//! The typed taxonomy of load-bearing protocol moments.

/// A multicast group (pub/sub session) identifier.
///
/// Defined here — at the bottom of the dependency graph — so every layer
/// (trace events, the wire protocol, the cam-pubsub service registry) can
/// share one type without new edges; cam-pubsub re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u64);

impl GroupId {
    /// The raw identifier value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One recorded event: an [`EventKind`] stamped with a clock reading and
/// the actor it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in microseconds. In-simulation this is the *virtual*
    /// clock (`SimTime`); in cam-net it is the runtime's wire clock
    /// (micros since cluster start). Never wall time.
    pub at_micros: u64,
    /// The actor (ring slot index) the event happened at. Runtime-level
    /// events (retransmits) use the local node's index.
    pub actor: u64,
    /// Monotonic sequence number assigned by the recording tracer; breaks
    /// ties between events sharing a timestamp and survives ring-buffer
    /// eviction (it keeps counting from where recording started).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// What happened, with the protocol context that makes a trace readable.
///
/// Segments are carried as plain `(lo, hi)` identifier pairs on the
/// multicast ring so this crate stays dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An actor forwarded a multicast payload to a child.
    MulticastForward {
        /// Payload identifier.
        payload: u64,
        /// Ring identifier of the child the payload went to.
        to: u64,
        /// Hop count the child will receive the payload at.
        hops: u32,
        /// The responsibility segment `(lo, hi)` delegated to the child
        /// when the protocol split its region (CAM-Chord); `None` for
        /// constrained-flooding edges (CAM-Koorde).
        segment: Option<(u64, u64)>,
        /// The pub/sub group this payload belongs to; `None` for
        /// single-group (session-less) multicasts.
        group: Option<GroupId>,
    },
    /// First receipt of a payload at this actor.
    MulticastReceive {
        /// Payload identifier.
        payload: u64,
        /// Hops from the source.
        hops: u32,
        /// The pub/sub group this payload belongs to; `None` for
        /// single-group multicasts.
        group: Option<GroupId>,
    },
    /// A payload arrived again and was suppressed as a duplicate.
    DuplicateSuppress {
        /// Payload identifier.
        payload: u64,
        /// Hop count of the suppressed (redundant) copy.
        hops: u32,
        /// The pub/sub group this payload belongs to; `None` for
        /// single-group multicasts.
        group: Option<GroupId>,
    },
    /// A CAM-Chord internal node split its multicast region among
    /// children (one event per split, alongside the per-child forwards).
    RegionSplit {
        /// Payload identifier.
        payload: u64,
        /// Number of children the region was split among.
        children: u32,
    },
    /// A lookup resolved and a neighbor (finger) was installed.
    NeighborResolve {
        /// The finger target identifier that was being resolved.
        target: u64,
        /// Ring identifier of the neighbor that now owns the slot.
        neighbor: u64,
    },
    /// A neighbor failed liveness probing and was evicted.
    NeighborMiss {
        /// Ring identifier of the evicted neighbor.
        neighbor: u64,
        /// Consecutive strikes at eviction time.
        strikes: u32,
    },
    /// One stabilization round ran at this actor.
    StabilizeRound {
        /// Successor-list length after the round.
        successors: u32,
    },
    /// The runtime retransmitted an unacked frame with backoff.
    Retransmit {
        /// Destination node index.
        to: u64,
        /// Wire sequence number of the retransmitted frame.
        wire_seq: u64,
        /// Attempt number (1 = first retransmit).
        attempt: u32,
        /// The backed-off retransmission timeout now armed, in micros.
        rto_micros: u64,
    },
    /// A join handshake request arrived at its bootstrap target.
    JoinRequest {
        /// Ring identifier of the joining member.
        joiner: u64,
    },
    /// A join handshake completed; the joiner is a member.
    JoinComplete {
        /// Ring identifier of the joined member.
        joiner: u64,
    },
    /// The actor crashed (killed without goodbye).
    Crash,
    /// The actor departed gracefully.
    Leave,
    /// A previously crashed actor was restarted with fresh (empty) state
    /// and is rejoining the overlay.
    Restart,
    /// An invariant oracle found a violation at this actor (recorded by
    /// the chaos harness so replay bundles carry the verdict in-band).
    OracleViolation {
        /// Stable name of the violated oracle.
        oracle: &'static str,
    },
    /// A named phase began (bench/run stage attribution; pair with
    /// [`EventKind::PhaseEnd`]).
    PhaseBegin {
        /// Phase name.
        name: &'static str,
    },
    /// A named phase ended.
    PhaseEnd {
        /// Phase name.
        name: &'static str,
    },
    /// A Byzantine adversary (attached by the chaos harness) performed
    /// one of its scripted misbehaviors at this actor.
    AdversaryAct {
        /// Stable name of the behavior ("misroute", "selective_drop",
        /// "forge_capacity", "replay", "stale_incarnation").
        behavior: &'static str,
        /// Payload the act concerned; `0` when the act is not
        /// payload-scoped (e.g. a stale stabilize answer).
        payload: u64,
    },
    /// An honest node's built-in defense flagged suspected misbehavior
    /// and bumped the matching detection counter.
    AdversaryDetect {
        /// Stable name of the detection counter that fired
        /// ("region_violation", "capacity_forgery", "replay_suspect",
        /// "stale_claim", "repair_recovery").
        detector: &'static str,
        /// The peer the evidence points at: the sender's actor index for
        /// frame-level detections, a ring identifier for membership-level
        /// ones (stale claims), `0` when unattributable (repair
        /// recoveries).
        suspect: u64,
        /// Payload involved; `0` when the evidence is not payload-scoped.
        payload: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event kind, used by both exporters
    /// and by tests counting events.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MulticastForward { .. } => "multicast_forward",
            EventKind::MulticastReceive { .. } => "multicast_receive",
            EventKind::DuplicateSuppress { .. } => "duplicate_suppress",
            EventKind::RegionSplit { .. } => "region_split",
            EventKind::NeighborResolve { .. } => "neighbor_resolve",
            EventKind::NeighborMiss { .. } => "neighbor_miss",
            EventKind::StabilizeRound { .. } => "stabilize_round",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::JoinRequest { .. } => "join_request",
            EventKind::JoinComplete { .. } => "join_complete",
            EventKind::Crash => "crash",
            EventKind::Leave => "leave",
            EventKind::Restart => "restart",
            EventKind::OracleViolation { .. } => "oracle_violation",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::AdversaryAct { .. } => "adversary_act",
            EventKind::AdversaryDetect { .. } => "adversary_detect",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let kinds = [
            EventKind::MulticastForward {
                payload: 0,
                to: 0,
                hops: 0,
                segment: None,
                group: None,
            },
            EventKind::MulticastReceive {
                payload: 0,
                hops: 0,
                group: Some(GroupId(1)),
            },
            EventKind::DuplicateSuppress {
                payload: 0,
                hops: 0,
                group: None,
            },
            EventKind::RegionSplit {
                payload: 0,
                children: 0,
            },
            EventKind::NeighborResolve {
                target: 0,
                neighbor: 0,
            },
            EventKind::NeighborMiss {
                neighbor: 0,
                strikes: 0,
            },
            EventKind::StabilizeRound { successors: 0 },
            EventKind::Retransmit {
                to: 0,
                wire_seq: 0,
                attempt: 0,
                rto_micros: 0,
            },
            EventKind::JoinRequest { joiner: 0 },
            EventKind::JoinComplete { joiner: 0 },
            EventKind::Crash,
            EventKind::Leave,
            EventKind::Restart,
            EventKind::OracleViolation { oracle: "x" },
            EventKind::PhaseBegin { name: "x" },
            EventKind::PhaseEnd { name: "x" },
            EventKind::AdversaryAct {
                behavior: "x",
                payload: 0,
            },
            EventKind::AdversaryDetect {
                detector: "x",
                suspect: 0,
                payload: 0,
            },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len(), "duplicate event name");
    }
}
