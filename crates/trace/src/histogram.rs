//! Integer-valued histograms and running summaries.
//!
//! These lived in `cam-metrics` originally, but the telemetry registry
//! needs them and `cam-metrics` sits *above* the overlay in the dependency
//! graph — so they moved here, to the bottom of the stack, and
//! `cam-metrics` re-exports them unchanged.

/// A dense histogram over small non-negative integer values (hop counts,
/// fan-outs).
///
/// # Example
///
/// ```
/// use cam_trace::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 2, 3] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket(2), 2);
/// assert!((h.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(h.percentile(50.0), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        let idx = value as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += value;
    }

    /// Records `weight` observations of `value`.
    pub fn record_n(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        let idx = value as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += weight;
        self.count += weight;
        self.total += value * weight;
    }

    /// Number of observations of exactly `value`.
    pub fn bucket(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// All buckets, index = value.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Largest observed value (0 for an empty histogram).
    pub fn max(&self) -> u64 {
        (self.buckets.len() as u64).saturating_sub(1)
    }

    /// The smallest value v such that at least `p`% of observations are
    /// ≤ v.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        assert!(self.count > 0, "percentile of empty histogram");
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (v, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return v as u64;
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.total += other.total;
    }
}

/// Running mean / min / max / standard deviation over `f64` samples
/// (Welford's algorithm).
///
/// # Example
///
/// ```
/// use cam_trace::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.stddev() - 2.138).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample standard deviation (0 for < 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(5);
        h.record(0);
        h.record_n(3, 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.bucket(99), 0);
        assert_eq!(h.max(), 5);
        assert!((h.mean() - 11.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), 1);
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(99.0), 99);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.percentile(0.0), 1, "0th percentile = min");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(9);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(1), 2);
        assert_eq!(a.bucket(9), 1);
        assert!((a.mean() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile of empty histogram")]
    fn percentile_of_empty_panics() {
        Histogram::new().percentile(50.0);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(7, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets().len(), 0);
    }

    #[test]
    fn summary_welford_matches_naive() {
        let data = [3.5f64, -1.25, 0.0, 8.0, 2.5, 2.5];
        let mut s = Summary::new();
        for &v in &data {
            s.record(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.stddev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), -1.25);
        assert_eq!(s.max(), 8.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        s.record(4.0);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }
}
