//! Named counters, gauges, and histograms for run-level telemetry.

use std::collections::BTreeMap;

use crate::Histogram;

/// A registry of named scalars and distributions.
///
/// This is the one home for run-level telemetry that used to be scattered
/// across ad-hoc structs (`WireCounters` snapshots, per-run scalars):
/// monotonic *counters*, last-write-wins *gauges*, and integer-valued
/// *histograms*. Keys are `&'static str` so recording never allocates, and
/// storage is `BTreeMap` so iteration order — and therefore every exported
/// report — is deterministic.
///
/// # Example
///
/// ```
/// use cam_trace::TelemetryRegistry;
///
/// let mut r = TelemetryRegistry::new();
/// r.counter_add("frames_decoded", 3);
/// r.counter_add("frames_decoded", 1);
/// r.gauge_set("live_nodes", 31);
/// r.observe("hops", 4);
/// assert_eq!(r.counter("frames_decoded"), 4);
/// assert_eq!(r.gauge("live_nodes"), Some(31));
/// assert_eq!(r.histogram("hops").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TelemetryRegistry::default()
    }

    /// Adds `delta` to the named monotonic counter (created at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        self.gauges.insert(name, value);
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into the named histogram (created empty).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named histogram, if anything was ever observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = TelemetryRegistry::new();
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("x", 2);
        r.counter_add("x", 5);
        assert_eq!(r.counter("x"), 7);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut r = TelemetryRegistry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", -3);
        r.gauge_set("g", 11);
        assert_eq!(r.gauge("g"), Some(11));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = TelemetryRegistry::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 1);
        r.counter_add("mid", 1);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn histograms_record() {
        let mut r = TelemetryRegistry::new();
        r.observe("hops", 1);
        r.observe("hops", 3);
        let h = r.histogram("hops").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(3), 1);
        assert!(r.histogram("other").is_none());
        assert!(!r.is_empty());
    }
}
