//! The [`Tracer`] trait and its two implementations.

use std::collections::VecDeque;

use crate::event::{EventKind, TraceEvent};
use crate::export;
use crate::registry::TelemetryRegistry;

/// The recording interface threaded through the sim engine, `DhtActor`,
/// and the net runtime.
///
/// Every method has a no-op default so [`NopTracer`] — the default
/// everywhere — compiles to an empty virtual call, and hook sites that
/// would do real work to *build* an event can gate on
/// [`Tracer::enabled`] first.
///
/// The tracer never reads a clock: callers pass `at_micros` from their own
/// clock domain (virtual sim time, or the runtime's wire clock).
pub trait Tracer {
    /// True when events are actually being kept; lets hot paths skip
    /// event construction entirely when tracing is off.
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event at `at_micros` (caller's clock domain) at actor
    /// `actor` (ring slot index).
    fn record(&mut self, at_micros: u64, actor: u64, kind: EventKind) {
        let _ = (at_micros, actor, kind);
    }

    /// Adds `delta` to a named monotonic counter.
    fn counter_add(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a named gauge (last write wins).
    fn gauge_set(&mut self, name: &'static str, value: i64) {
        let _ = (name, value);
    }

    /// Records `value` into a named histogram.
    fn observe(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Downcast hook: the recording tracer returns itself so hosts that
    /// own a `Box<dyn Tracer>` can hand the recorded data back for export
    /// without `Any` machinery.
    fn as_recording(&self) -> Option<&RecordingTracer> {
        None
    }
}

/// The zero-overhead default: keeps nothing, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopTracer;

impl Tracer for NopTracer {}

/// A bounded ring buffer of [`TraceEvent`]s plus a [`TelemetryRegistry`].
///
/// When the buffer is full the *oldest* event is evicted and counted in
/// [`RecordingTracer::dropped`], so memory stays bounded on arbitrarily
/// long runs while the most recent window — where a stall or recovery is
/// usually visible — survives. Events carry a monotonic sequence number
/// that keeps counting across evictions, so a reader can tell exactly how
/// much history scrolled away.
///
/// # Example
///
/// ```
/// use cam_trace::{EventKind, RecordingTracer, Tracer};
///
/// let mut t = RecordingTracer::with_capacity(2);
/// t.record(1, 0, EventKind::Crash);
/// t.record(2, 1, EventKind::Leave);
/// t.record(3, 2, EventKind::Crash); // evicts the first event
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.events().next().unwrap().at_micros, 2);
/// ```
#[derive(Debug, Clone)]
pub struct RecordingTracer {
    cap: usize,
    ring: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
    registry: TelemetryRegistry,
}

impl RecordingTracer {
    /// Default ring capacity: enough for the full event stream of the
    /// 32-node loss-injection cluster runs with plenty of headroom.
    pub const DEFAULT_CAPACITY: usize = 1 << 17;

    /// A tracer with [`RecordingTracer::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        RecordingTracer::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A tracer keeping at most `cap` events (clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        RecordingTracer {
            cap,
            ring: VecDeque::with_capacity(cap),
            next_seq: 0,
            dropped: 0,
            registry: TelemetryRegistry::new(),
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no event is held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of held events whose kind name equals `name`
    /// (see [`EventKind::name`]).
    pub fn count(&self, name: &str) -> usize {
        self.ring.iter().filter(|e| e.kind.name() == name).count()
    }

    /// The telemetry registry.
    pub fn registry(&self) -> &TelemetryRegistry {
        &self.registry
    }

    /// Mutable access to the telemetry registry.
    pub fn registry_mut(&mut self) -> &mut TelemetryRegistry {
        &mut self.registry
    }

    /// Serializes the held events as Chrome Trace Event Format JSON
    /// (open in `chrome://tracing` or Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(self)
    }

    /// A compact, deterministic plain-text report: event counts by kind,
    /// registry contents, and drop statistics.
    pub fn text_report(&self) -> String {
        export::text_report(self)
    }
}

impl Default for RecordingTracer {
    fn default() -> Self {
        RecordingTracer::new()
    }
}

impl Tracer for RecordingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at_micros: u64, actor: u64, kind: EventKind) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push_back(TraceEvent {
            at_micros,
            actor,
            seq,
            kind,
        });
    }

    fn counter_add(&mut self, name: &'static str, delta: u64) {
        self.registry.counter_add(name, delta);
    }

    fn gauge_set(&mut self, name: &'static str, value: i64) {
        self.registry.gauge_set(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.registry.observe(name, value);
    }

    fn as_recording(&self) -> Option<&RecordingTracer> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_tracer_is_disabled_and_silent() {
        let mut t = NopTracer;
        assert!(!t.enabled());
        t.record(1, 2, EventKind::Crash);
        t.counter_add("x", 1);
        assert!(t.as_recording().is_none());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = RecordingTracer::with_capacity(3);
        for i in 0..10u64 {
            t.record(i, 0, EventKind::Leave);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let times: Vec<u64> = t.events().map(|e| e.at_micros).collect();
        assert_eq!(times, vec![7, 8, 9]);
        // Sequence numbers keep counting across evictions.
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut t = RecordingTracer::with_capacity(0);
        assert_eq!(t.capacity(), 1);
        t.record(1, 0, EventKind::Crash);
        t.record(2, 0, EventKind::Leave);
        assert_eq!(t.len(), 1);
        assert_eq!(t.events().next().unwrap().kind.name(), "leave");
    }

    #[test]
    fn count_filters_by_kind_name() {
        let mut t = RecordingTracer::new();
        t.record(1, 0, EventKind::Crash);
        t.record(2, 0, EventKind::Crash);
        t.record(3, 0, EventKind::Leave);
        assert_eq!(t.count("crash"), 2);
        assert_eq!(t.count("leave"), 1);
        assert_eq!(t.count("retransmit"), 0);
    }

    #[test]
    fn dyn_dispatch_round_trips_through_as_recording() {
        let mut boxed: Box<dyn Tracer> = Box::new(RecordingTracer::new());
        boxed.record(5, 7, EventKind::JoinRequest { joiner: 42 });
        boxed.counter_add("joins", 1);
        let rec = boxed.as_recording().expect("recording tracer");
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.registry().counter("joins"), 1);
    }
}
