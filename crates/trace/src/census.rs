//! The shared delivery-ratio computation.
//!
//! Both multicast hosts — the simulator's `DynamicNetwork` and the net
//! `Cluster` — used to carry their own copy of the same fold: count live
//! actors, count live actors that hold the payload, divide. The copies had
//! already been written twice; this is the one implementation both now
//! use, so the semantics (dead actors don't count, an empty group delivers
//! 0.0) can never drift apart again.

/// Folds per-actor liveness/delivery observations into a delivery ratio.
///
/// # Example
///
/// ```
/// use cam_trace::DeliveryCensus;
///
/// let mut c = DeliveryCensus::new();
/// c.observe(true, true); // live, has the payload
/// c.observe(true, false); // live, still waiting
/// c.observe(false, false); // dead: excluded from the denominator
/// assert_eq!(c.live(), 2);
/// assert_eq!(c.delivered(), 1);
/// assert!((c.ratio() - 0.5).abs() < 1e-12);
/// assert_eq!(DeliveryCensus::new().ratio(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryCensus {
    live: u64,
    delivered: u64,
}

impl DeliveryCensus {
    /// An empty census.
    pub fn new() -> Self {
        DeliveryCensus::default()
    }

    /// Folds in one actor. Dead actors are ignored entirely; a dead
    /// actor's `delivered` flag is meaningless and discarded.
    pub fn observe(&mut self, alive: bool, delivered: bool) {
        if alive {
            self.live += 1;
            if delivered {
                self.delivered += 1;
            }
        }
    }

    /// Number of live actors observed.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Number of live actors that held the payload.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivered fraction of live actors; `0.0` when no live actor was
    /// observed (matching both hosts' historical behavior).
    pub fn ratio(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.delivered as f64 / self.live as f64
        }
    }
}

/// A [`DeliveryCensus`] per pub/sub group — the multi-group extension used
/// by cam-pubsub and both multicast hosts.
///
/// Keys are raw [`crate::event::GroupId`] values; the `BTreeMap` keeps
/// iteration (and therefore every derived report) deterministic. Equality
/// is structural, so "same seed ⇒ bit-identical per-group census" is an
/// `assert_eq!` away.
///
/// # Example
///
/// ```
/// use cam_trace::GroupDeliveryCensus;
///
/// let mut c = GroupDeliveryCensus::new();
/// c.observe(7, true, true);
/// c.observe(7, true, false);
/// c.observe(9, true, true);
/// assert_eq!(c.ratio(7), 0.5);
/// assert_eq!(c.ratio(9), 1.0);
/// assert_eq!(c.ratio(8), 0.0); // never-observed group
/// assert_eq!(c.ratios(), vec![0.5, 1.0]); // ascending group order
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupDeliveryCensus {
    groups: std::collections::BTreeMap<u64, DeliveryCensus>,
}

impl GroupDeliveryCensus {
    /// An empty census with no groups.
    pub fn new() -> Self {
        GroupDeliveryCensus::default()
    }

    /// Folds one actor observation into group `group`'s census.
    pub fn observe(&mut self, group: u64, alive: bool, delivered: bool) {
        self.groups
            .entry(group)
            .or_default()
            .observe(alive, delivered);
    }

    /// The census for one group, if any observation mentioned it.
    pub fn group(&self, group: u64) -> Option<&DeliveryCensus> {
        self.groups.get(&group)
    }

    /// Delivery ratio for `group`; `0.0` for a group never observed.
    pub fn ratio(&self, group: u64) -> f64 {
        self.groups.get(&group).map_or(0.0, DeliveryCensus::ratio)
    }

    /// Number of groups observed.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no group was ever observed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterates `(group, census)` in ascending group order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &DeliveryCensus)> {
        self.groups.iter().map(|(g, c)| (*g, c))
    }

    /// Per-group delivery ratios in ascending group order — the input
    /// vector for fairness indices (Jain, Gini) over groups.
    pub fn ratios(&self) -> Vec<f64> {
        self.groups.values().map(DeliveryCensus::ratio).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_census_is_zero() {
        assert_eq!(DeliveryCensus::new().ratio(), 0.0);
    }

    #[test]
    fn dead_actors_do_not_count() {
        let mut c = DeliveryCensus::new();
        for _ in 0..3 {
            c.observe(false, true); // nonsensical flag on a dead actor
        }
        assert_eq!(c.live(), 0);
        assert_eq!(c.ratio(), 0.0);
        c.observe(true, true);
        assert_eq!(c.ratio(), 1.0);
    }

    #[test]
    fn full_delivery_is_exactly_one() {
        let mut c = DeliveryCensus::new();
        for _ in 0..32 {
            c.observe(true, true);
        }
        assert_eq!(c.ratio(), 1.0);
    }

    #[test]
    fn group_census_is_deterministic_and_comparable() {
        let build = || {
            let mut c = GroupDeliveryCensus::new();
            // Insertion order must not matter.
            for g in [9u64, 1, 5, 1, 9] {
                c.observe(g, true, g != 5);
            }
            c
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(
            a.iter().map(|(g, _)| g).collect::<Vec<_>>(),
            vec![1, 5, 9],
            "iteration must be ascending by group"
        );
        assert_eq!(a.ratios(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn group_census_ignores_dead_actors_per_group() {
        let mut c = GroupDeliveryCensus::new();
        c.observe(3, false, true);
        assert_eq!(c.ratio(3), 0.0);
        assert_eq!(c.group(3).unwrap().live(), 0);
    }
}
