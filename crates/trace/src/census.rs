//! The shared delivery-ratio computation.
//!
//! Both multicast hosts — the simulator's `DynamicNetwork` and the net
//! `Cluster` — used to carry their own copy of the same fold: count live
//! actors, count live actors that hold the payload, divide. The copies had
//! already been written twice; this is the one implementation both now
//! use, so the semantics (dead actors don't count, an empty group delivers
//! 0.0) can never drift apart again.

/// Folds per-actor liveness/delivery observations into a delivery ratio.
///
/// # Example
///
/// ```
/// use cam_trace::DeliveryCensus;
///
/// let mut c = DeliveryCensus::new();
/// c.observe(true, true); // live, has the payload
/// c.observe(true, false); // live, still waiting
/// c.observe(false, false); // dead: excluded from the denominator
/// assert_eq!(c.live(), 2);
/// assert_eq!(c.delivered(), 1);
/// assert!((c.ratio() - 0.5).abs() < 1e-12);
/// assert_eq!(DeliveryCensus::new().ratio(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryCensus {
    live: u64,
    delivered: u64,
}

impl DeliveryCensus {
    /// An empty census.
    pub fn new() -> Self {
        DeliveryCensus::default()
    }

    /// Folds in one actor. Dead actors are ignored entirely; a dead
    /// actor's `delivered` flag is meaningless and discarded.
    pub fn observe(&mut self, alive: bool, delivered: bool) {
        if alive {
            self.live += 1;
            if delivered {
                self.delivered += 1;
            }
        }
    }

    /// Number of live actors observed.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Number of live actors that held the payload.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivered fraction of live actors; `0.0` when no live actor was
    /// observed (matching both hosts' historical behavior).
    pub fn ratio(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.delivered as f64 / self.live as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_census_is_zero() {
        assert_eq!(DeliveryCensus::new().ratio(), 0.0);
    }

    #[test]
    fn dead_actors_do_not_count() {
        let mut c = DeliveryCensus::new();
        for _ in 0..3 {
            c.observe(false, true); // nonsensical flag on a dead actor
        }
        assert_eq!(c.live(), 0);
        assert_eq!(c.ratio(), 0.0);
        c.observe(true, true);
        assert_eq!(c.ratio(), 1.0);
    }

    #[test]
    fn full_delivery_is_exactly_one() {
        let mut c = DeliveryCensus::new();
        for _ in 0..32 {
            c.observe(true, true);
        }
        assert_eq!(c.ratio(), 1.0);
    }
}
