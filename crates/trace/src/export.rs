//! Exporters: Chrome Trace Event Format JSON and a compact text report.
//!
//! Both outputs are deterministic functions of the tracer's contents —
//! events in ring order, registry entries in name order — so two runs with
//! the same seed produce byte-identical artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};
use crate::tracer::RecordingTracer;

/// Serializes the tracer's events as Chrome Trace Event Format JSON.
///
/// Instant events use `"ph":"i"` with thread scope; [`EventKind::PhaseBegin`] /
/// [`EventKind::PhaseEnd`] become `"ph":"B"` / `"ph":"E"` duration pairs so
/// phases render as bars. `pid` is always 0; `tid` is the actor index, so
/// each actor gets its own track in the viewer. Timestamps are already in
/// microseconds, the format's native unit.
pub fn chrome_trace_json(tracer: &RecordingTracer) -> String {
    let mut out = String::with_capacity(64 + tracer.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in tracer.events().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, ev);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    let _ = write!(out, ",\"camTraceDropped\":{}", tracer.dropped());
    out.push('}');
    out
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    let (name, ph) = match &ev.kind {
        EventKind::PhaseBegin { name } => (*name, "B"),
        EventKind::PhaseEnd { name } => (*name, "E"),
        kind => (kind.name(), "i"),
    };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
        name, ph, ev.at_micros, ev.actor
    );
    if ph == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    let _ = write!(out, "\"seq\":{}", ev.seq);
    push_args(out, &ev.kind);
    out.push_str("}}");
}

fn push_args(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::MulticastForward {
            payload,
            to,
            hops,
            segment,
            group,
        } => {
            let _ = write!(out, ",\"payload\":{payload},\"to\":{to},\"hops\":{hops}");
            if let Some((lo, hi)) = segment {
                let _ = write!(out, ",\"segment_lo\":{lo},\"segment_hi\":{hi}");
            }
            if let Some(g) = group {
                let _ = write!(out, ",\"group\":{}", g.value());
            }
        }
        EventKind::MulticastReceive {
            payload,
            hops,
            group,
        }
        | EventKind::DuplicateSuppress {
            payload,
            hops,
            group,
        } => {
            let _ = write!(out, ",\"payload\":{payload},\"hops\":{hops}");
            if let Some(g) = group {
                let _ = write!(out, ",\"group\":{}", g.value());
            }
        }
        EventKind::RegionSplit { payload, children } => {
            let _ = write!(out, ",\"payload\":{payload},\"children\":{children}");
        }
        EventKind::NeighborResolve { target, neighbor } => {
            let _ = write!(out, ",\"target\":{target},\"neighbor\":{neighbor}");
        }
        EventKind::NeighborMiss { neighbor, strikes } => {
            let _ = write!(out, ",\"neighbor\":{neighbor},\"strikes\":{strikes}");
        }
        EventKind::StabilizeRound { successors } => {
            let _ = write!(out, ",\"successors\":{successors}");
        }
        EventKind::Retransmit {
            to,
            wire_seq,
            attempt,
            rto_micros,
        } => {
            let _ = write!(
                out,
                ",\"to\":{to},\"wire_seq\":{wire_seq},\"attempt\":{attempt},\"rto_micros\":{rto_micros}"
            );
        }
        EventKind::JoinRequest { joiner } | EventKind::JoinComplete { joiner } => {
            let _ = write!(out, ",\"joiner\":{joiner}");
        }
        EventKind::OracleViolation { oracle } => {
            let _ = write!(out, ",\"oracle\":\"{oracle}\"");
        }
        EventKind::AdversaryAct { behavior, payload } => {
            let _ = write!(out, ",\"behavior\":\"{behavior}\",\"payload\":{payload}");
        }
        EventKind::AdversaryDetect {
            detector,
            suspect,
            payload,
        } => {
            let _ = write!(
                out,
                ",\"detector\":\"{detector}\",\"suspect\":{suspect},\"payload\":{payload}"
            );
        }
        EventKind::Crash
        | EventKind::Leave
        | EventKind::Restart
        | EventKind::PhaseBegin { .. }
        | EventKind::PhaseEnd { .. } => {}
    }
}

/// Renders a compact, deterministic plain-text report: event counts by
/// kind, registry contents, and drop statistics.
pub fn text_report(tracer: &RecordingTracer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cam-trace report: {} events held (capacity {}, {} dropped)",
        tracer.len(),
        tracer.capacity(),
        tracer.dropped()
    );

    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    // Multicast traffic (forward/receive/suppress) attributed per pub/sub
    // group; the `None` key collects single-group (session-less) events.
    let mut by_group: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    let mut span = (u64::MAX, 0u64);
    for ev in tracer.events() {
        *by_kind.entry(ev.kind.name()).or_insert(0) += 1;
        match &ev.kind {
            EventKind::MulticastForward { group, .. }
            | EventKind::MulticastReceive { group, .. }
            | EventKind::DuplicateSuppress { group, .. } => {
                *by_group.entry(group.map(|g| g.value())).or_insert(0) += 1;
            }
            _ => {}
        }
        span.0 = span.0.min(ev.at_micros);
        span.1 = span.1.max(ev.at_micros);
    }
    if !tracer.is_empty() {
        let _ = writeln!(out, "time span: {} us .. {} us", span.0, span.1);
    }
    if !by_kind.is_empty() {
        out.push_str("events by kind:\n");
        for (name, n) in &by_kind {
            let _ = writeln!(out, "  {name:<20} {n}");
        }
    }
    // Only worth a section when at least one event was group-attributed.
    if by_group.keys().any(Option::is_some) {
        out.push_str("multicast events by group:\n");
        for (group, n) in &by_group {
            match group {
                Some(g) => {
                    let _ = writeln!(out, "  group {g:<14} {n}");
                }
                None => {
                    let _ = writeln!(out, "  (ungrouped)      {n}");
                }
            }
        }
    }

    let reg = tracer.registry();
    if reg.counters().next().is_some() {
        out.push_str("counters:\n");
        for (name, v) in reg.counters() {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
    }
    if reg.gauges().next().is_some() {
        out.push_str("gauges:\n");
        for (name, v) in reg.gauges() {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
    }
    if reg.histograms().next().is_some() {
        out.push_str("histograms:\n");
        for (name, h) in reg.histograms() {
            let _ = writeln!(
                out,
                "  {name:<24} count={} mean={:.3} p50={} max={}",
                h.count(),
                h.mean(),
                if h.count() > 0 { h.percentile(50.0) } else { 0 },
                h.max()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn sample() -> RecordingTracer {
        let mut t = RecordingTracer::with_capacity(64);
        t.record(
            100,
            0,
            EventKind::MulticastForward {
                payload: 1,
                to: 9,
                hops: 1,
                segment: Some((10, 99)),
                group: None,
            },
        );
        t.record(
            150,
            9,
            EventKind::MulticastReceive {
                payload: 1,
                hops: 1,
                group: Some(crate::event::GroupId(42)),
            },
        );
        t.record(
            160,
            9,
            EventKind::DuplicateSuppress {
                payload: 1,
                hops: 3,
                group: None,
            },
        );
        t.record(
            200,
            2,
            EventKind::Retransmit {
                to: 5,
                wire_seq: 77,
                attempt: 2,
                rto_micros: 400_000,
            },
        );
        t.record(0, 0, EventKind::PhaseBegin { name: "build" });
        t.record(50, 0, EventKind::PhaseEnd { name: "build" });
        t.counter_add("frames_decoded", 12);
        t.gauge_set("live_nodes", 32);
        t.observe("hops", 1);
        t
    }

    #[test]
    fn chrome_json_has_expected_shape() {
        let json = sample().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"name\":\"multicast_forward\""));
        assert!(json.contains("\"segment_lo\":10"));
        assert!(json.contains("\"segment_hi\":99"));
        assert!(json.contains("\"name\":\"retransmit\""));
        assert!(json.contains("\"rto_micros\":400000"));
        // Phase pair renders as a B/E duration, named by the phase.
        assert!(json.contains("\"name\":\"build\",\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"build\",\"ph\":\"E\""));
        // Instants carry thread scope; phases must not.
        assert!(json.contains("\"ph\":\"i\",\"ts\":150,\"pid\":0,\"tid\":9,\"s\":\"t\""));
        // Balanced braces and brackets — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_json_of_empty_tracer_is_valid() {
        let t = RecordingTracer::with_capacity(4);
        let json = t.chrome_trace_json();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn text_report_lists_kinds_and_registry() {
        let report = sample().text_report();
        assert!(report.contains("6 events held"));
        assert!(report.contains("duplicate_suppress"));
        assert!(report.contains("frames_decoded"));
        assert!(report.contains("live_nodes"));
        assert!(report.contains("hops"));
        assert!(report.contains("time span: 0 us .. 200 us"));
    }

    #[test]
    fn group_attribution_reaches_both_exporters() {
        let json = sample().chrome_trace_json();
        assert!(json.contains("\"group\":42"));
        let report = sample().text_report();
        assert!(report.contains("multicast events by group:"));
        assert!(report.contains("group 42"));
        assert!(report.contains("(ungrouped)"));
    }

    #[test]
    fn ungrouped_runs_omit_the_group_section() {
        let mut t = RecordingTracer::with_capacity(8);
        t.record(
            1,
            0,
            EventKind::MulticastReceive {
                payload: 1,
                hops: 1,
                group: None,
            },
        );
        let report = t.text_report();
        assert!(!report.contains("multicast events by group:"));
        assert!(!t.chrome_trace_json().contains("\"group\""));
    }

    #[test]
    fn exports_are_deterministic() {
        assert_eq!(sample().chrome_trace_json(), sample().chrome_trace_json());
        assert_eq!(sample().text_report(), sample().text_report());
    }
}
