#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic structured-event tracing and runtime telemetry for the
//! CAM overlays.
//!
//! The paper's resilience story (§2, §5) is about *why* a multicast stalls
//! or recovers — which subtree a crashed CAM-Chord internal node took down,
//! which flooding edge routed around it. End-of-run scalars cannot answer
//! that; per-event visibility can. This crate provides it without
//! compromising the workspace's determinism guarantees:
//!
//! * [`Tracer`] — the recording interface. Every method has a no-op
//!   default, so the zero-sized [`NopTracer`] costs one predictable branch
//!   per hook site and nothing else.
//! * [`RecordingTracer`] — a bounded ring buffer of [`TraceEvent`]s plus a
//!   [`TelemetryRegistry`] of counters / gauges / histograms. When the ring
//!   is full the *oldest* event is evicted (and counted in
//!   [`RecordingTracer::dropped`]), so memory stays bounded on arbitrarily
//!   long runs while the most recent — usually most interesting — window
//!   survives.
//! * [`EventKind`] — the typed taxonomy of load-bearing protocol moments:
//!   multicast forward / receive / duplicate-suppress, region split,
//!   neighbor resolve / miss, stabilization rounds, retransmit / backoff,
//!   join handshakes, crash / leave, and named phases for bench
//!   attribution.
//! * [`export`] — Chrome Trace Event Format JSON (open it in
//!   `chrome://tracing` or Perfetto) and a compact text report.
//! * [`Histogram`] / [`Summary`] — the workspace's measurement primitives
//!   (re-exported by `cam-metrics` for compatibility).
//! * [`DeliveryCensus`] — the one shared delivery-ratio implementation
//!   used by both the simulator's `DynamicNetwork` and the net `Cluster`.
//!
//! # Clock domains
//!
//! The tracer never reads a clock. Callers stamp every event with
//! microseconds from *their* clock domain: the simulator passes its
//! virtual `SimTime`, the net runtime passes its wire clock (micros since
//! cluster start). No `Instant` / `SystemTime` appears anywhere in this
//! crate — it passes cam-lint's determinism rule like the protocol crates
//! it serves.
//!
//! # Example
//!
//! ```
//! use cam_trace::{EventKind, RecordingTracer, Tracer};
//!
//! let mut t = RecordingTracer::with_capacity(128);
//! t.record(10, 3, EventKind::MulticastReceive { payload: 7, hops: 2, group: None });
//! t.record(15, 3, EventKind::DuplicateSuppress { payload: 7, hops: 4, group: None });
//! t.counter_add("frames_decoded", 2);
//! assert_eq!(t.len(), 2);
//! assert_eq!(t.count("duplicate_suppress"), 1);
//! assert!(t.chrome_trace_json().contains("\"traceEvents\""));
//! ```

pub mod census;
pub mod event;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod tracer;

pub use census::{DeliveryCensus, GroupDeliveryCensus};
pub use event::{EventKind, GroupId, TraceEvent};
pub use histogram::{Histogram, Summary};
pub use registry::TelemetryRegistry;
pub use tracer::{NopTracer, RecordingTracer, Tracer};
