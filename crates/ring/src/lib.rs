#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Identifier-ring arithmetic for capacity-aware multicast overlays.
//!
//! Every overlay in this workspace (Chord, Koorde, CAM-Chord, CAM-Koorde)
//! operates on a circular identifier space `[0, N)` with `N = 2^b`. Members
//! are mapped onto the ring by hashing; routing and multicast are defined in
//! terms of clockwise *segments* `(x, k]` of the ring and of distances
//! between identifiers.
//!
//! This crate provides:
//!
//! * [`IdSpace`] — the ring itself (modular add/sub, segment sizes,
//!   distances, successor-oriented helpers);
//! * [`Id`] — a newtype identifier, always interpreted relative to an
//!   [`IdSpace`];
//! * [`Segment`] — the paper's half-open clockwise segment `(from, to]`;
//! * [`math`] — integer base-`c` logarithms and saturating powers used by
//!   CAM-Chord's neighbor/level computations;
//! * [`sha1`] — a from-scratch SHA-1 implementation used to map member
//!   names/addresses onto the ring (the paper specifies SHA-1).
//!
//! # Example
//!
//! ```
//! use cam_ring::{Id, IdSpace};
//!
//! let space = IdSpace::new(19); // the paper's identifier space [0, 2^19)
//! let x = Id(12);
//! let k = space.add(x, 25);
//! // the clockwise segment (x, k] has 25 identifiers
//! assert_eq!(space.seg_len(x, k), 25);
//! assert!(space.in_segment(space.add(x, 1), x, k));
//! assert!(!space.in_segment(x, x, k));
//! ```

pub mod math;
pub mod segment;
pub mod sha1;

mod id;

pub use id::{Id, IdSpace};
pub use segment::Segment;
