//! The paper's clockwise half-open segment `(from, to]`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Id, IdSpace};

/// A clockwise segment `(from, to]` of the identifier ring.
///
/// Following the paper (Section 2), the segment starts at `from + 1`, moves
/// clockwise, and ends at (and includes) `to`. `Segment { from: x, to: x }`
/// is the empty segment; a segment can hold at most `N - 1` identifiers, so
/// the full ring is *not* representable (the multicast routines use
/// `(x, x - 1]`, the whole ring minus the source, which is exactly the
/// paper's `x.MULTICAST(msg, x − 1)` initial call).
///
/// # Example
///
/// ```
/// use cam_ring::{Id, IdSpace, Segment};
///
/// let s = IdSpace::new(5);
/// let seg = Segment::new(Id(29), Id(2));
/// assert_eq!(seg.len(s), 5); // {30, 31, 0, 1, 2}
/// assert!(seg.contains(s, Id(0)));
/// assert!(!seg.contains(s, Id(29)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Exclusive clockwise start.
    pub from: Id,
    /// Inclusive clockwise end.
    pub to: Id,
}

impl Segment {
    /// Creates the segment `(from, to]`.
    #[inline]
    pub fn new(from: Id, to: Id) -> Self {
        Segment { from, to }
    }

    /// The empty segment anchored at `at` (i.e. `(at, at]`).
    #[inline]
    pub fn empty(at: Id) -> Self {
        Segment { from: at, to: at }
    }

    /// The segment covering the whole ring except `source`:
    /// `(source, source − 1]`. This is the region a multicast source is
    /// responsible for disseminating to.
    #[inline]
    pub fn all_but(space: IdSpace, source: Id) -> Self {
        Segment {
            from: source,
            to: space.sub(source, 1),
        }
    }

    /// Number of identifiers in the segment.
    #[inline]
    pub fn len(self, space: IdSpace) -> u64 {
        space.seg_len(self.from, self.to)
    }

    /// Whether the segment is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.from == self.to
    }

    /// Whether `id` lies in the segment.
    #[inline]
    pub fn contains(self, space: IdSpace, id: Id) -> bool {
        space.in_segment(id, self.from, self.to)
    }

    /// Restricts the segment to end no later than `new_to`, which must be an
    /// identifier inside the segment (or equal to `from`, yielding empty).
    ///
    /// Returns `(from, new_to]`.
    #[inline]
    pub fn truncated(self, new_to: Id) -> Self {
        Segment {
            from: self.from,
            to: new_to,
        }
    }

    /// Iterates over the identifiers of the segment in clockwise order.
    ///
    /// Intended for tests and tiny rings; the iterator yields `len` items.
    pub fn iter(self, space: IdSpace) -> Iter {
        Iter {
            space,
            next: space.add(self.from, 1),
            remaining: self.len(space),
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.from, self.to)
    }
}

/// Iterator over the identifiers of a [`Segment`], produced by
/// [`Segment::iter`].
#[derive(Debug, Clone)]
pub struct Iter {
    space: IdSpace,
    next: Id,
    remaining: u64,
}

impl Iterator for Iter {
    type Item = Id;

    fn next(&mut self) -> Option<Id> {
        if self.remaining == 0 {
            return None;
        }
        let id = self.next;
        self.next = self.space.add(self.next, 1);
        self.remaining -= 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    const S: IdSpace = IdSpace::PAPER;

    #[test]
    fn empty_segment() {
        let s = IdSpace::new(5);
        let seg = Segment::empty(Id(7));
        assert!(seg.is_empty());
        assert_eq!(seg.len(s), 0);
        assert_eq!(seg.iter(s).count(), 0);
        assert!(!seg.contains(s, Id(7)));
        assert!(!seg.contains(s, Id(8)));
    }

    #[test]
    fn all_but_source() {
        let s = IdSpace::new(5);
        let seg = Segment::all_but(s, Id(0));
        assert_eq!(seg.len(s), 31);
        assert!(!seg.contains(s, Id(0)));
        assert!(seg.contains(s, Id(31)));
        assert!(seg.contains(s, Id(1)));
    }

    #[test]
    fn iter_wraps() {
        let s = IdSpace::new(5);
        let seg = Segment::new(Id(29), Id(2));
        let ids: Vec<u64> = seg.iter(s).map(Id::value).collect();
        assert_eq!(ids, vec![30, 31, 0, 1, 2]);
        assert_eq!(seg.iter(s).len(), 5);
    }

    #[test]
    fn truncation() {
        let seg = Segment::new(Id(10), Id(100)).truncated(Id(50));
        assert_eq!(seg, Segment::new(Id(10), Id(50)));
        assert_eq!(seg.len(S), 40);
    }

    #[test]
    fn display() {
        assert_eq!(Segment::new(Id(3), Id(9)).to_string(), "(3, 9]");
    }
}
