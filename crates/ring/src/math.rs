//! Integer base-`c` logarithms and saturating powers.
//!
//! CAM-Chord's neighbor table and routing are defined in terms of
//! `i = ⌊log(k − x) / log c⌋` and `j = ⌊(k − x) / c^i⌋` (paper equations (1)
//! and (2)). Computing these with floating point is unreliable near powers
//! of `c`, so everything here is exact integer arithmetic.

/// `⌊log_base(value)⌋` for `value ≥ 1`, `base ≥ 2`.
///
/// # Panics
///
/// Panics if `value == 0` or `base < 2`.
///
/// # Example
///
/// ```
/// use cam_ring::math::floor_log;
/// assert_eq!(floor_log(31, 3), 3); // 3^3 = 27 ≤ 31 < 81
/// assert_eq!(floor_log(27, 3), 3);
/// assert_eq!(floor_log(26, 3), 2);
/// assert_eq!(floor_log(1, 7), 0);
/// ```
pub fn floor_log(value: u64, base: u64) -> u32 {
    assert!(value >= 1, "floor_log of zero");
    assert!(base >= 2, "floor_log base must be >= 2");
    let mut exp = 0u32;
    let mut acc = 1u64;
    // Invariant: acc == base^exp <= value.
    loop {
        match acc.checked_mul(base) {
            Some(next) if next <= value => {
                acc = next;
                exp += 1;
            }
            _ => return exp,
        }
    }
}

/// `base^exp`, saturating at `u64::MAX` instead of overflowing.
///
/// Useful for level spacings `c^i` where high levels may exceed the
/// identifier space; saturation keeps comparisons (`dist < c^i`) correct.
///
/// # Example
///
/// ```
/// use cam_ring::math::pow_saturating;
/// assert_eq!(pow_saturating(3, 4), 81);
/// assert_eq!(pow_saturating(2, 64), u64::MAX);
/// assert_eq!(pow_saturating(10, 0), 1);
/// ```
pub fn pow_saturating(base: u64, exp: u32) -> u64 {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = match acc.checked_mul(base) {
            Some(v) => v,
            None => return u64::MAX,
        };
    }
    acc
}

/// Smallest `L` such that `base^L >= target` (for `target >= 1`,
/// `base >= 2`). This is the number of neighbor *levels* a CAM-Chord node
/// with capacity `base` needs to cover an identifier space of size
/// `target`: `L = ⌈log_base(target)⌉`.
///
/// # Panics
///
/// Panics if `target == 0` or `base < 2`.
///
/// # Example
///
/// ```
/// use cam_ring::math::ceil_log;
/// assert_eq!(ceil_log(32, 2), 5);
/// assert_eq!(ceil_log(32, 3), 4); // 3^3 = 27 < 32 ≤ 81 = 3^4
/// assert_eq!(ceil_log(27, 3), 3);
/// assert_eq!(ceil_log(1, 3), 0);
/// ```
pub fn ceil_log(target: u64, base: u64) -> u32 {
    assert!(target >= 1, "ceil_log of zero");
    assert!(base >= 2, "ceil_log base must be >= 2");
    let mut exp = 0u32;
    let mut acc = 1u64;
    while acc < target {
        acc = acc.saturating_mul(base);
        exp += 1;
    }
    exp
}

/// The CAM-Chord *level* `i` and *sequence number* `j` of a clockwise
/// distance `dist = (k − x) mod N` with respect to capacity `c` (paper
/// equations (1) and (2)):
///
/// * `i = ⌊log(dist) / log c⌋`
/// * `j = ⌊dist / c^i⌋`
///
/// Hence `1 <= j <= c - 1` whenever `dist >= 1` — except that `j == c` can
/// not occur because then `i` would have been larger. For `dist == 0` there
/// is no level; callers must handle the empty segment first.
///
/// # Panics
///
/// Panics if `dist == 0` or `c < 2`.
///
/// # Example
///
/// ```
/// use cam_ring::math::level_and_seq;
/// // Paper, Section 3.2 example: identifier x+25 w.r.t. x with c = 3
/// assert_eq!(level_and_seq(25, 3), (2, 2));
/// // Paper, Section 3.4 example: x−1 (= x+31 on a 32-ring) has level 3, seq 1
/// assert_eq!(level_and_seq(31, 3), (3, 1));
/// ```
pub fn level_and_seq(dist: u64, c: u64) -> (u32, u64) {
    assert!(dist >= 1, "level_and_seq of empty segment");
    assert!(c >= 2, "capacity must be >= 2");
    let i = floor_log(dist, c);
    let j = dist / pow_saturating(c, i);
    debug_assert!((1..c).contains(&j));
    (i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_log_edges() {
        assert_eq!(floor_log(1, 2), 0);
        assert_eq!(floor_log(2, 2), 1);
        assert_eq!(floor_log(3, 2), 1);
        assert_eq!(floor_log(4, 2), 2);
        assert_eq!(floor_log(u64::MAX, 2), 63);
        assert_eq!(floor_log(u64::MAX, 3), 40);
    }

    #[test]
    fn floor_log_exact_powers() {
        for base in 2u64..=12 {
            for exp in 0u32..12 {
                let v = pow_saturating(base, exp);
                assert_eq!(floor_log(v, base), exp, "base={base} exp={exp}");
                if v > 1 {
                    assert_eq!(floor_log(v - 1, base), exp - 1);
                }
                if v + 1 < pow_saturating(base, exp + 1) {
                    assert_eq!(floor_log(v + 1, base), exp, "just above a power");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "floor_log of zero")]
    fn floor_log_zero_panics() {
        floor_log(0, 2);
    }

    #[test]
    #[should_panic(expected = "base must be >= 2")]
    fn floor_log_base_one_panics() {
        floor_log(5, 1);
    }

    #[test]
    fn pow_saturates() {
        assert_eq!(pow_saturating(2, 63), 1 << 63);
        assert_eq!(pow_saturating(2, 64), u64::MAX);
        assert_eq!(pow_saturating(u64::MAX, 1), u64::MAX);
        assert_eq!(pow_saturating(u64::MAX, 2), u64::MAX);
        assert_eq!(pow_saturating(1, 1000), 1);
        assert_eq!(pow_saturating(0, 3), 0);
        assert_eq!(pow_saturating(0, 0), 1);
    }

    #[test]
    fn ceil_log_vs_floor_log() {
        for base in 2u64..=11 {
            for target in 1u64..1000 {
                let l = ceil_log(target, base);
                assert!(pow_saturating(base, l) >= target);
                if l > 0 {
                    assert!(pow_saturating(base, l - 1) < target);
                }
            }
        }
    }

    #[test]
    fn level_seq_ranges() {
        for c in 2u64..=10 {
            for dist in 1u64..2000 {
                let (i, j) = level_and_seq(dist, c);
                let ci = pow_saturating(c, i);
                assert!(ci <= dist, "c^i <= dist");
                assert!(j >= 1 && j < c, "j in [1, c): c={c} dist={dist} j={j}");
                assert!(j * ci <= dist && dist < (j + 1) * ci);
            }
        }
    }

    #[test]
    fn paper_lookup_example_levels() {
        // Section 3.2: from x, identifier x+25 with c=3 → level 2, seq 2.
        assert_eq!(level_and_seq(25, 3), (2, 2));
        // Forwarded to node x+18; from x+18 (also c=3), k−x = 7 → level 1, seq 2.
        assert_eq!(level_and_seq(7, 3), (1, 2));
    }
}
