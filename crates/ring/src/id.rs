use std::fmt;

use serde::{Deserialize, Serialize};

/// An identifier on the ring.
///
/// `Id` is a plain newtype over `u64`; it is always interpreted relative to
/// an [`IdSpace`], which defines the modulus `N = 2^b`. All arithmetic on
/// identifiers goes through [`IdSpace`] methods so that wrap-around is
/// handled in exactly one place.
///
/// The field is public in the C-struct spirit: an `Id` carries no invariant
/// of its own (it is canonicalized by the `IdSpace` on every operation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Id(pub u64);

impl Id {
    /// Raw value of the identifier.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Binary for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Id {
    fn from(v: u64) -> Self {
        Id(v)
    }
}

impl From<Id> for u64 {
    fn from(id: Id) -> Self {
        id.0
    }
}

/// A circular identifier space `[0, N)` with `N = 2^bits`.
///
/// The paper uses `N = 2^19`; [`IdSpace::PAPER`] is that instance. All
/// modular arithmetic, clockwise-segment membership, and distance
/// computations used by the overlays live here.
///
/// # Conventions (following the paper, Section 2)
///
/// * The segment `(x, y]` starts at `x + 1`, moves clockwise, and ends at
///   `y`. Its size is `(y - x) mod N`; in particular `(x, x]` is empty.
/// * The distance `|x - y|` is the minimum of the two segment sizes.
///
/// # Example
///
/// ```
/// use cam_ring::{Id, IdSpace};
///
/// let s = IdSpace::new(5); // N = 32, as in the paper's Figure 2
/// assert_eq!(s.add(Id(29), 4), Id(1));
/// assert_eq!(s.seg_len(Id(29), Id(1)), 4);
/// assert_eq!(s.distance(Id(29), Id(1)), 4);
/// assert_eq!(s.distance(Id(1), Id(29)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IdSpace {
    bits: u32,
}

impl IdSpace {
    /// The identifier space used throughout the paper's evaluation:
    /// `[0, 2^19)`.
    pub const PAPER: IdSpace = IdSpace { bits: 19 };

    /// Creates an identifier space `[0, 2^bits)`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 62`. The upper limit keeps `N` (and all
    /// segment sizes) representable in `u64` with headroom for intermediate
    /// sums.
    pub const fn new(bits: u32) -> Self {
        assert!(bits >= 1 && bits <= 62, "IdSpace bits must be in 1..=62");
        IdSpace { bits }
    }

    /// Number of bits `b` of the space (`N = 2^b`).
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The modulus `N = 2^b`.
    #[inline]
    pub fn size(self) -> u64 {
        1u64 << self.bits
    }

    /// Bit-mask `N - 1` used to reduce values into the space.
    #[inline]
    pub fn mask(self) -> u64 {
        self.size() - 1
    }

    /// Reduces an arbitrary value into the space.
    #[inline]
    pub fn reduce(self, v: u64) -> Id {
        Id(v & self.mask())
    }

    /// Whether `id` is a canonical identifier of this space.
    #[inline]
    pub fn contains(self, id: Id) -> bool {
        id.0 < self.size()
    }

    /// `(x + delta) mod N`.
    #[inline]
    pub fn add(self, x: Id, delta: u64) -> Id {
        self.reduce(x.0.wrapping_add(delta))
    }

    /// `(x - delta) mod N`.
    #[inline]
    pub fn sub(self, x: Id, delta: u64) -> Id {
        self.reduce(x.0.wrapping_sub(delta))
    }

    /// Size of the clockwise segment `(x, y]`, i.e. `(y - x) mod N`.
    ///
    /// This is the paper's "`(y − x)` is always positive" segment length;
    /// `seg_len(x, x) == 0` (the empty segment).
    #[inline]
    pub fn seg_len(self, x: Id, y: Id) -> u64 {
        y.0.wrapping_sub(x.0) & self.mask()
    }

    /// Ring distance `|x - y| = min{(y - x) mod N, (x - y) mod N}`.
    #[inline]
    pub fn distance(self, x: Id, y: Id) -> u64 {
        let cw = self.seg_len(x, y);
        cw.min(self.size() - cw).min(cw) // cw == 0 ⇒ both 0
    }

    /// Whether `id` lies in the clockwise segment `(from, to]`.
    ///
    /// `(x, x]` is empty, so `in_segment(id, x, x)` is always `false`.
    #[inline]
    pub fn in_segment(self, id: Id, from: Id, to: Id) -> bool {
        let len = self.seg_len(from, to);
        let off = self.seg_len(from, id);
        off != 0 && off <= len
    }

    /// Whether `id` lies in the half-open clockwise interval `[from, to)`.
    ///
    /// Used by Koorde-style neighbor freedom checks; `[x, x)` is empty.
    #[inline]
    pub fn in_interval_incl_excl(self, id: Id, from: Id, to: Id) -> bool {
        let len = self.seg_len(from, to);
        let off = self.seg_len(from, id);
        off < len
    }

    /// Hashes arbitrary bytes to an identifier with SHA-1 (as the paper
    /// prescribes), taking the low `b` bits of the first 8 digest bytes.
    pub fn hash_to_id(self, data: &[u8]) -> Id {
        let digest = crate::sha1::Sha1::digest(data);
        let mut v = 0u64;
        for &byte in digest.iter().take(8) {
            v = (v << 8) | u64::from(byte);
        }
        self.reduce(v)
    }
}

impl fmt::Display for IdSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[0, 2^{})", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_bits() {
        for bits in [0u32, 63, 64, 255] {
            let r = std::panic::catch_unwind(|| IdSpace::new(bits));
            assert!(r.is_err(), "bits={bits} should panic");
        }
    }

    #[test]
    fn size_and_mask() {
        let s = IdSpace::new(5);
        assert_eq!(s.size(), 32);
        assert_eq!(s.mask(), 31);
        assert_eq!(IdSpace::PAPER.size(), 1 << 19);
    }

    #[test]
    fn add_sub_wrap() {
        let s = IdSpace::new(5);
        assert_eq!(s.add(Id(31), 1), Id(0));
        assert_eq!(s.add(Id(29), 4), Id(1));
        assert_eq!(s.sub(Id(0), 1), Id(31));
        assert_eq!(s.sub(Id(3), 5), Id(30));
        // delta larger than N wraps consistently
        assert_eq!(s.add(Id(1), 64), Id(1));
        assert_eq!(s.add(Id(1), 65), Id(2));
    }

    #[test]
    fn seg_len_conventions() {
        let s = IdSpace::new(5);
        assert_eq!(s.seg_len(Id(3), Id(3)), 0, "(x, x] is empty");
        assert_eq!(s.seg_len(Id(3), Id(4)), 1);
        assert_eq!(s.seg_len(Id(4), Id(3)), 31, "wraps the long way");
        assert_eq!(s.seg_len(Id(0), Id(31)), 31);
    }

    #[test]
    fn distance_symmetric() {
        let s = IdSpace::new(5);
        assert_eq!(s.distance(Id(1), Id(29)), 4);
        assert_eq!(s.distance(Id(29), Id(1)), 4);
        assert_eq!(s.distance(Id(0), Id(16)), 16);
        assert_eq!(s.distance(Id(7), Id(7)), 0);
    }

    #[test]
    fn in_segment_wraparound() {
        let s = IdSpace::new(5);
        // (29, 2] = {30, 31, 0, 1, 2}
        for v in [30u64, 31, 0, 1, 2] {
            assert!(s.in_segment(Id(v), Id(29), Id(2)), "{v}");
        }
        for v in [29u64, 3, 15] {
            assert!(!s.in_segment(Id(v), Id(29), Id(2)), "{v}");
        }
        // Empty segment contains nothing, not even its own endpoint.
        assert!(!s.in_segment(Id(5), Id(5), Id(5)));
        assert!(!s.in_segment(Id(6), Id(5), Id(5)));
    }

    #[test]
    fn in_interval_incl_excl_basics() {
        let s = IdSpace::new(5);
        // [29, 2) = {29, 30, 31, 0, 1}
        for v in [29u64, 30, 31, 0, 1] {
            assert!(s.in_interval_incl_excl(Id(v), Id(29), Id(2)), "{v}");
        }
        for v in [2u64, 3, 28] {
            assert!(!s.in_interval_incl_excl(Id(v), Id(29), Id(2)), "{v}");
        }
        assert!(!s.in_interval_incl_excl(Id(5), Id(5), Id(5)), "[x,x) empty");
    }

    #[test]
    fn hash_to_id_in_space_and_deterministic() {
        let s = IdSpace::PAPER;
        let a = s.hash_to_id(b"node-1");
        let b = s.hash_to_id(b"node-1");
        let c = s.hash_to_id(b"node-2");
        assert_eq!(a, b);
        assert_ne!(a, c, "different inputs should (overwhelmingly) differ");
        assert!(s.contains(a));
        assert!(s.contains(c));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Id(42).to_string(), "42");
        assert_eq!(format!("{:b}", Id(5)), "101");
        assert_eq!(format!("{:x}", Id(255)), "ff");
        assert_eq!(IdSpace::new(19).to_string(), "[0, 2^19)");
    }
}
