//! A from-scratch SHA-1 implementation (FIPS 180-1).
//!
//! The paper maps member hosts onto the identifier ring with SHA-1. No
//! external hashing crate is in this workspace's dependency budget, so the
//! digest is implemented here and validated against the FIPS/RFC 3174 test
//! vectors.
//!
//! SHA-1 is used purely to *spread identifiers uniformly on the ring* — a
//! non-adversarial setting where its known collision weaknesses are
//! irrelevant.
//!
//! # Example
//!
//! ```
//! use cam_ring::sha1::Sha1;
//!
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(
//!     Sha1::to_hex(&digest),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! ```

/// Streaming SHA-1 hasher.
///
/// Feed data with [`Sha1::update`] and finish with [`Sha1::finalize`], or use
/// the one-shot [`Sha1::digest`].
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        // Fill a partially full buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        // `update` adjusted self.len, but padding doesn't count; we already
        // captured bit_len, so further bookkeeping of len is irrelevant.
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Lowercase hex rendering of a digest.
    pub fn to_hex(digest: &[u8; 20]) -> String {
        let mut s = String::with_capacity(40);
        for b in digest {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::to_hex(&Sha1::digest(data))
    }

    #[test]
    fn rfc3174_vectors() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&[b'a'; 1_000_000]),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn boundary_lengths() {
        // Message lengths around the 55/56/64-byte padding boundaries must
        // round-trip without panicking and give stable results.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let one_shot = Sha1::digest(&data);
            // Same digest when streamed byte-by-byte.
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one_shot, "len={len}");
        }
    }

    #[test]
    fn streaming_split_points() {
        let data: Vec<u8> = (0u16..300).map(|v| (v % 251) as u8).collect();
        let expect = Sha1::digest(&data);
        for split in [0usize, 1, 63, 64, 65, 100, 299, 300] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split={split}");
        }
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }
}
