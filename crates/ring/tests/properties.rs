//! Property-based tests for ring arithmetic and segments.

use cam_ring::math::{ceil_log, floor_log, level_and_seq, pow_saturating};
use cam_ring::{Id, IdSpace, Segment};
use proptest::prelude::*;

fn space_and_ids() -> impl Strategy<Value = (IdSpace, u64, u64, u64)> {
    (1u32..=62).prop_flat_map(|bits| {
        let n = 1u64 << bits;
        (Just(IdSpace::new(bits)), 0..n, 0..n, 0..n)
    })
}

proptest! {
    /// add and sub are inverses.
    #[test]
    fn add_sub_roundtrip((space, x, d, _) in space_and_ids()) {
        let id = Id(x);
        prop_assert_eq!(space.sub(space.add(id, d), d), id);
        prop_assert_eq!(space.add(space.sub(id, d), d), id);
    }

    /// seg_len(x, y) + seg_len(y, x) == N whenever x != y.
    #[test]
    fn seg_len_complement((space, x, y, _) in space_and_ids()) {
        let (x, y) = (Id(x), Id(y));
        if x == y {
            prop_assert_eq!(space.seg_len(x, y), 0);
        } else {
            prop_assert_eq!(space.seg_len(x, y) + space.seg_len(y, x), space.size());
        }
    }

    /// Distance is symmetric and at most N/2.
    #[test]
    fn distance_symmetric_bounded((space, x, y, _) in space_and_ids()) {
        let (x, y) = (Id(x), Id(y));
        prop_assert_eq!(space.distance(x, y), space.distance(y, x));
        prop_assert!(space.distance(x, y) <= space.size() / 2);
    }

    /// Every identifier is in exactly one of (x, y] and (y, x] when x != y,
    /// except the endpoints which belong to their respective segments.
    #[test]
    fn segments_partition((space, x, y, z) in space_and_ids()) {
        let (x, y, z) = (Id(x), Id(y), Id(z));
        prop_assume!(x != y);
        let in_xy = space.in_segment(z, x, y);
        let in_yx = space.in_segment(z, y, x);
        // z is in exactly one segment, unless it equals one of the endpoints,
        // in which case it is in the segment that *ends* at it.
        prop_assert!(in_xy ^ in_yx || z == x || z == y);
        if z == y {
            prop_assert!(in_xy && !in_yx);
        }
        if z == x {
            prop_assert!(in_yx && !in_xy);
        }
    }

    /// Splitting (x, k] at an interior cut m yields two disjoint segments
    /// covering it: (x, m] ∪ (m, k].
    #[test]
    fn segment_split((space, x, k, m) in space_and_ids()) {
        let (x, k, m) = (Id(x), Id(k), Id(m));
        prop_assume!(space.in_segment(m, x, k));
        let whole = Segment::new(x, k);
        let left = Segment::new(x, m);
        let right = Segment::new(m, k);
        prop_assert_eq!(left.len(space) + right.len(space), whole.len(space));
        // Membership agrees (checked against a sampled id).
        let probe = Id(space.add(x, whole.len(space) / 2).value());
        let in_whole = whole.contains(space, probe);
        let in_parts = left.contains(space, probe) || right.contains(space, probe);
        prop_assert_eq!(in_whole, in_parts);
    }

    /// floor_log/ceil_log/pow are mutually consistent.
    #[test]
    fn log_pow_consistent(value in 1u64..u64::MAX, base in 2u64..64) {
        let f = floor_log(value, base);
        prop_assert!(pow_saturating(base, f) <= value);
        prop_assert!(pow_saturating(base, f + 1) > value);
        let c = ceil_log(value, base);
        prop_assert!(pow_saturating(base, c) >= value);
        prop_assert!(c == 0 || pow_saturating(base, c - 1) < value);
    }

    /// level_and_seq recovers dist within one c^i stride.
    #[test]
    fn level_seq_recovers(dist in 1u64..u64::MAX / 2, c in 2u64..200) {
        let (i, j) = level_and_seq(dist, c);
        let ci = pow_saturating(c, i);
        prop_assert!(j >= 1 && j < c);
        prop_assert!(j * ci <= dist);
        prop_assert!(dist - j * ci < ci);
    }

    /// `(x, x]` is always empty: zero length, contains nothing — not even
    /// its own anchor — and iterates zero identifiers.
    #[test]
    fn empty_segment_contains_nothing((space, x, z, _) in space_and_ids()) {
        let seg = Segment::empty(Id(x));
        prop_assert!(seg.is_empty());
        prop_assert_eq!(seg.len(space), 0);
        prop_assert!(!seg.contains(space, Id(z)));
        prop_assert!(!seg.contains(space, Id(x)));
    }

    /// `all_but(x)` = `(x, x − 1]` is the complement of the anchor: length
    /// N − 1, containing every identifier except `x` itself.
    #[test]
    fn all_but_is_anchor_complement((space, x, z, _) in space_and_ids()) {
        let seg = Segment::all_but(space, Id(x));
        prop_assert_eq!(seg.len(space), space.size() - 1);
        prop_assert!(!seg.contains(space, Id(x)));
        prop_assert_eq!(seg.contains(space, Id(z)), z != x);
    }

    /// `(x − 1, x]` is the single-point segment: exactly `{x}`.
    #[test]
    fn single_point_segment((space, x, z, _) in space_and_ids()) {
        let seg = Segment::new(space.sub(Id(x), 1), Id(x));
        prop_assert_eq!(seg.len(space), 1);
        prop_assert!(seg.contains(space, Id(x)));
        prop_assert_eq!(seg.contains(space, Id(z)), z == x);
        prop_assert_eq!(seg.iter(space).collect::<Vec<_>>(), vec![Id(x)]);
    }

    /// Cutting a parent region at `c_x` interior points (the multicast
    /// child-region split, wrap-around included) yields child segments that
    /// sum exactly to the parent — no gap, no overlap — and whose membership
    /// union is the parent's.
    #[test]
    fn child_regions_partition_parent(
        (space, x, k, _) in space_and_ids(),
        raw_cuts in prop::collection::vec(0u64..u64::MAX, 0..6),
        probe in 0u64..u64::MAX,
    ) {
        let (x, k) = (Id(x), Id(k));
        prop_assume!(x != k);
        let parent = Segment::new(x, k);
        // Map arbitrary u64s to distinct cut points inside (x, k], sorted
        // clockwise from x; the split walks cut→cut with the last child
        // running to the parent's end — exactly the multicast assignment.
        let mut offsets: Vec<u64> = raw_cuts.iter()
            .map(|&r| 1 + r % parent.len(space))
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        let cuts: Vec<Id> = offsets.iter().map(|&d| space.add(x, d)).collect();
        let mut children = Vec::new();
        let mut from = x;
        for &cut in &cuts {
            children.push(Segment::new(from, cut));
            from = cut;
        }
        children.push(Segment::new(from, k));
        // Lengths sum exactly (the final segment may be empty when the
        // last cut is k itself — still length 0, no overlap).
        let total: u64 = children.iter().map(|c| c.len(space)).sum();
        prop_assert_eq!(total, parent.len(space));
        // Membership: every probe id is in the parent iff it is in exactly
        // one child.
        let p = space.reduce(probe);
        let owners = children.iter().filter(|c| c.contains(space, p)).count();
        prop_assert_eq!(owners, usize::from(parent.contains(space, p)));
    }

    /// Segment iteration matches membership on small rings.
    #[test]
    fn iter_matches_contains(bits in 1u32..=8, x in 0u64..256, k in 0u64..256) {
        let space = IdSpace::new(bits);
        let x = space.reduce(x);
        let k = space.reduce(k);
        let seg = Segment::new(x, k);
        let members: Vec<Id> = seg.iter(space).collect();
        prop_assert_eq!(members.len() as u64, seg.len(space));
        for v in 0..space.size() {
            let id = Id(v);
            prop_assert_eq!(members.contains(&id), seg.contains(space, id));
        }
    }
}

#[test]
fn hash_spread_is_roughly_uniform() {
    // 4096 hashed ids over a 2^19 ring should occupy distinct positions and
    // cover all four quadrants — a sanity check, not a statistical test.
    let space = IdSpace::PAPER;
    let mut quadrant = [0usize; 4];
    let mut seen = std::collections::HashSet::new();
    for i in 0..4096u32 {
        let id = space.hash_to_id(format!("member-{i}").as_bytes());
        seen.insert(id);
        quadrant[(id.value() * 4 / space.size()) as usize] += 1;
    }
    assert!(seen.len() > 4000, "almost no collisions expected");
    for (q, &count) in quadrant.iter().enumerate() {
        assert!(count > 512, "quadrant {q} suspiciously empty: {count}");
    }
}
