//! Property-based tests for ring arithmetic and segments.

use cam_ring::math::{ceil_log, floor_log, level_and_seq, pow_saturating};
use cam_ring::{Id, IdSpace, Segment};
use proptest::prelude::*;

fn space_and_ids() -> impl Strategy<Value = (IdSpace, u64, u64, u64)> {
    (1u32..=62).prop_flat_map(|bits| {
        let n = 1u64 << bits;
        (Just(IdSpace::new(bits)), 0..n, 0..n, 0..n)
    })
}

proptest! {
    /// add and sub are inverses.
    #[test]
    fn add_sub_roundtrip((space, x, d, _) in space_and_ids()) {
        let id = Id(x);
        prop_assert_eq!(space.sub(space.add(id, d), d), id);
        prop_assert_eq!(space.add(space.sub(id, d), d), id);
    }

    /// seg_len(x, y) + seg_len(y, x) == N whenever x != y.
    #[test]
    fn seg_len_complement((space, x, y, _) in space_and_ids()) {
        let (x, y) = (Id(x), Id(y));
        if x == y {
            prop_assert_eq!(space.seg_len(x, y), 0);
        } else {
            prop_assert_eq!(space.seg_len(x, y) + space.seg_len(y, x), space.size());
        }
    }

    /// Distance is symmetric and at most N/2.
    #[test]
    fn distance_symmetric_bounded((space, x, y, _) in space_and_ids()) {
        let (x, y) = (Id(x), Id(y));
        prop_assert_eq!(space.distance(x, y), space.distance(y, x));
        prop_assert!(space.distance(x, y) <= space.size() / 2);
    }

    /// Every identifier is in exactly one of (x, y] and (y, x] when x != y,
    /// except the endpoints which belong to their respective segments.
    #[test]
    fn segments_partition((space, x, y, z) in space_and_ids()) {
        let (x, y, z) = (Id(x), Id(y), Id(z));
        prop_assume!(x != y);
        let in_xy = space.in_segment(z, x, y);
        let in_yx = space.in_segment(z, y, x);
        // z is in exactly one segment, unless it equals one of the endpoints,
        // in which case it is in the segment that *ends* at it.
        prop_assert!(in_xy ^ in_yx || z == x || z == y);
        if z == y {
            prop_assert!(in_xy && !in_yx);
        }
        if z == x {
            prop_assert!(in_yx && !in_xy);
        }
    }

    /// Splitting (x, k] at an interior cut m yields two disjoint segments
    /// covering it: (x, m] ∪ (m, k].
    #[test]
    fn segment_split((space, x, k, m) in space_and_ids()) {
        let (x, k, m) = (Id(x), Id(k), Id(m));
        prop_assume!(space.in_segment(m, x, k));
        let whole = Segment::new(x, k);
        let left = Segment::new(x, m);
        let right = Segment::new(m, k);
        prop_assert_eq!(left.len(space) + right.len(space), whole.len(space));
        // Membership agrees (checked against a sampled id).
        let probe = Id(space.add(x, whole.len(space) / 2).value());
        let in_whole = whole.contains(space, probe);
        let in_parts = left.contains(space, probe) || right.contains(space, probe);
        prop_assert_eq!(in_whole, in_parts);
    }

    /// floor_log/ceil_log/pow are mutually consistent.
    #[test]
    fn log_pow_consistent(value in 1u64..u64::MAX, base in 2u64..64) {
        let f = floor_log(value, base);
        prop_assert!(pow_saturating(base, f) <= value);
        prop_assert!(pow_saturating(base, f + 1) > value);
        let c = ceil_log(value, base);
        prop_assert!(pow_saturating(base, c) >= value);
        prop_assert!(c == 0 || pow_saturating(base, c - 1) < value);
    }

    /// level_and_seq recovers dist within one c^i stride.
    #[test]
    fn level_seq_recovers(dist in 1u64..u64::MAX / 2, c in 2u64..200) {
        let (i, j) = level_and_seq(dist, c);
        let ci = pow_saturating(c, i);
        prop_assert!(j >= 1 && j < c);
        prop_assert!(j * ci <= dist);
        prop_assert!(dist - j * ci < ci);
    }

    /// Segment iteration matches membership on small rings.
    #[test]
    fn iter_matches_contains(bits in 1u32..=8, x in 0u64..256, k in 0u64..256) {
        let space = IdSpace::new(bits);
        let x = space.reduce(x);
        let k = space.reduce(k);
        let seg = Segment::new(x, k);
        let members: Vec<Id> = seg.iter(space).collect();
        prop_assert_eq!(members.len() as u64, seg.len(space));
        for v in 0..space.size() {
            let id = Id(v);
            prop_assert_eq!(members.contains(&id), seg.contains(space, id));
        }
    }
}

#[test]
fn hash_spread_is_roughly_uniform() {
    // 4096 hashed ids over a 2^19 ring should occupy distinct positions and
    // cover all four quadrants — a sanity check, not a statistical test.
    let space = IdSpace::PAPER;
    let mut quadrant = [0usize; 4];
    let mut seen = std::collections::HashSet::new();
    for i in 0..4096u32 {
        let id = space.hash_to_id(format!("member-{i}").as_bytes());
        seen.insert(id);
        quadrant[(id.value() * 4 / space.size()) as usize] += 1;
    }
    assert!(seen.len() > 4000, "almost no collisions expected");
    for (q, &count) in quadrant.iter().enumerate() {
        assert!(count > 512, "quadrant {q} suspiciously empty: {count}");
    }
}
