//! Self-contained process-memory readings from `/proc/self/status`.
//!
//! The scale benches report peak resident set size alongside throughput —
//! the whole point of the struct-of-arrays / streaming work is the memory
//! curve, so the harness must measure it without pulling in a crate. On
//! non-Linux hosts (or a masked `/proc`) every reading is `None` and the
//! JSON emits `null`; nothing else in the bench depends on these values.

/// A point-in-time memory reading, in mebibytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemReading {
    /// Current resident set size (`VmRSS`), MiB.
    pub rss_mb: Option<f64>,
    /// Peak resident set size since process start (`VmHWM`), MiB. The
    /// kernel's high-water mark is monotone, so a phase's value includes
    /// every earlier phase — readings must be interpreted in run order.
    pub peak_rss_mb: Option<f64>,
}

/// Reads `VmRSS` and `VmHWM` from `/proc/self/status`.
pub fn read_memory() -> MemReading {
    match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => parse_status(&status),
        Err(_) => MemReading::default(),
    }
}

/// Number of online logical CPUs, from `/proc/cpuinfo` — what the machine
/// actually has, as opposed to `available_parallelism`, which an affinity
/// mask or cgroup quota can shrink. Falls back to `available_parallelism`
/// when `/proc` is unavailable.
pub fn hardware_threads() -> usize {
    let counted = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    if counted > 0 {
        counted
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// Parses the `VmRSS:`/`VmHWM:` lines of a `/proc/<pid>/status` blob.
/// Values are reported by the kernel in kB.
fn parse_status(status: &str) -> MemReading {
    let field = |key: &str| -> Option<f64> {
        status
            .lines()
            .find(|l| l.starts_with(key))?
            .split_whitespace()
            .nth(1)?
            .parse::<f64>()
            .ok()
            .map(|kb| kb / 1024.0)
    };
    MemReading {
        rss_mb: field("VmRSS:"),
        peak_rss_mb: field("VmHWM:"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kernel_status_format() {
        let status = "Name:\thotpath\nVmPeak:\t  201000 kB\nVmRSS:\t  102400 kB\n\
                      VmHWM:\t  204800 kB\nThreads:\t1\n";
        let m = parse_status(status);
        assert_eq!(m.rss_mb, Some(100.0));
        assert_eq!(m.peak_rss_mb, Some(200.0));
    }

    #[test]
    fn missing_fields_read_as_none() {
        assert_eq!(parse_status("Name:\tx\n"), MemReading::default());
        assert_eq!(parse_status("VmRSS:\tgarbage kB\n").rss_mb, None);
    }

    #[test]
    fn live_reading_on_linux() {
        let m = read_memory();
        if cfg!(target_os = "linux") {
            let rss = m.rss_mb.expect("VmRSS present on Linux");
            let peak = m.peak_rss_mb.expect("VmHWM present on Linux");
            assert!(rss > 0.0 && peak >= rss, "rss {rss} peak {peak}");
        }
        assert!(hardware_threads() >= 1);
    }
}
