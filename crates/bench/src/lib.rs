#![forbid(unsafe_code)]

//! Shared helpers for the Criterion benches.
//!
//! Each paper figure has a bench target that regenerates its data series
//! (at a reduced group size so a full `cargo bench` stays tractable); the
//! authoritative full-scale regeneration is `cargo run --release -p
//! cam-experiments --bin repro`. `micro` benches the primitive operations
//! (lookup, multicast-tree construction, neighbor resolution) and
//! `ablation` the design-choice variants from DESIGN.md.

use cam_experiments::Options;

pub mod baseline;
pub mod rss;

/// Bench-sized options: small enough for Criterion iterations, large
/// enough that the algorithms dominate constant overheads.
pub fn bench_options() -> Options {
    let mut opts = Options::quick();
    opts.n = 1_000;
    opts.sources = 2;
    opts
}
