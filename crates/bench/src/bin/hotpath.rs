//! Hot-path throughput harness: current code vs. the frozen pre-overhaul
//! baseline ([`cam_bench::baseline`]), measured in the same run, written to
//! `BENCH_hotpath.json` at the repository root.
//!
//! Three sections:
//!
//! 1. **owner resolution** — `MemberSet::owner_idx` (bucket index) vs.
//!    `owner_idx_binsearch` (`partition_point`), lookups/second;
//! 2. **tree construction** — `CamChord::multicast_tree` (flat tree,
//!    reusable scratch, indexed resolution) vs.
//!    `baseline::cam_chord_tree`, trees/second;
//! 3. **fig6 quick-profile sweep** — the CAM-Chord portion of the Figure 6
//!    sweep at `Options::quick()` scale, end-to-end: current pooled
//!    `parallel_sweep` + parallel `sample_trees` vs. the old
//!    thread-per-input spawn + serial source sampling. This is the number
//!    the acceptance bar (≥ 2× end-to-end trees/sec) reads.
//!
//! Plus the **scale** section: group construction, streaming multicast
//! statistics, and sharded-engine event throughput with peak-RSS readings
//! at n = 100,000 (always) and n = 1,000,000 (`--scale` flag) — the
//! million-member tier motivating the struct-of-arrays, sharded-queue, and
//! streaming-statistics work.
//!
//! And the **multigroup** section: the cam-pubsub service layer replaying
//! a Zipf-popular subscription workload — admissions/second (every
//! admitted subscribe rebuilds that group's tree against the residual
//! capacity ledger) and publishes/second over the frozen trees.
//!
//! And the **net_throughput** section: the cam-net wire loop on real
//! loopback UDP — frames/second, bytes/second per core, and
//! wakeups/second for the reactor loop on the multiplexed transport,
//! against the frozen pre-reactor polling loop, plus the sharded
//! multi-thread mode's aggregate rate.
//!
//! Uses `std::time` only (criterion is a dev-dependency, unavailable to
//! binaries) and a deterministic splitmix64 key stream instead of an RNG,
//! so runs are reproducible modulo machine noise.
//!
//! Each section is wrapped in a [`PhaseClock`] span; the per-stage wall
//! time and memory readings land in the JSON under an additive `"phases"`
//! key so a regression can be attributed to a stage without re-running the
//! harness.

use std::hint::black_box;
use std::time::Instant;

use cam_bench::baseline;
use cam_bench::rss::{self, MemReading};
use cam_core::CamChord;
use cam_experiments::fig6::DEGREE_TARGETS;
use cam_experiments::runner::{
    parallel_sweep, sample_distinct_sources, sample_tree_stats, sample_trees,
};
use cam_experiments::Options;
use cam_overlay::{MemberSet, StaticOverlay};
use cam_pubsub::GroupRegistry;
use cam_ring::Id;
use cam_sim::engine::{Actor, ActorId, Context, Simulation};
use cam_sim::latency::LatencyModel;
use cam_sim::time::Duration;
use cam_trace::{EventKind, RecordingTracer, Summary, Tracer};
use cam_workload::{BandwidthDist, CapacityAssignment, GroupOp, MultiGroupScenario, Scenario};

/// Attributes wall-clock time to named harness stages as
/// [`EventKind::PhaseBegin`]/[`EventKind::PhaseEnd`] span pairs in a
/// [`RecordingTracer`] — the same event stream the runtimes emit, so the
/// bench's own staging shows up in a Chrome trace like everything else.
/// (`Instant` is fine here: the harness measures real time by design and
/// `bin/` targets are outside the determinism rule.)
struct PhaseClock {
    tracer: RecordingTracer,
    epoch: Instant,
    /// Memory reading taken as each phase ends, in end order. `VmHWM` is
    /// the kernel's monotone high-water mark, so a phase's peak includes
    /// everything run before it.
    memory: Vec<(&'static str, MemReading)>,
}

impl PhaseClock {
    fn new() -> Self {
        PhaseClock {
            tracer: RecordingTracer::new(),
            epoch: Instant::now(),
            memory: Vec::new(),
        }
    }

    fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let at = self.epoch.elapsed().as_micros() as u64;
        self.tracer.record(at, 0, EventKind::PhaseBegin { name });
        let out = f();
        let at = self.epoch.elapsed().as_micros() as u64;
        self.tracer.record(at, 0, EventKind::PhaseEnd { name });
        self.memory.push((name, rss::read_memory()));
        out
    }

    /// `(name, seconds, memory at phase end)` per completed phase, in
    /// begin order.
    fn spans(&self) -> Vec<(&'static str, f64, MemReading)> {
        let mut open: Vec<(&'static str, u64)> = Vec::new();
        let mut out = Vec::new();
        for e in self.tracer.events() {
            match e.kind {
                EventKind::PhaseBegin { name } => open.push((name, e.at_micros)),
                EventKind::PhaseEnd { name } => {
                    if let Some(pos) = open.iter().rposition(|&(n, _)| n == name) {
                        let (_, begin) = open.remove(pos);
                        let mem = self
                            .memory
                            .iter()
                            .find(|&&(n, _)| n == name)
                            .map(|&(_, m)| m)
                            .unwrap_or_default();
                        out.push((name, (e.at_micros - begin) as f64 / 1e6, mem));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) for key streams.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn group_of(n: usize, seed: u64) -> MemberSet {
    Scenario::paper_default(seed).with_n(n).members()
}

/// Times `f` over `reps` repetitions and returns the best (minimum)
/// duration in seconds — the standard noise-resistant estimator.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct ResolutionRow {
    n: usize,
    lookups: usize,
    indexed_mops: f64,
    binsearch_mops: f64,
    speedup: f64,
}

fn bench_resolution(n: usize, lookups: usize) -> ResolutionRow {
    let group = group_of(n, 1);
    let mask = group.space().size() - 1;
    let keys: Vec<Id> = (0..lookups as u64).map(|i| Id(mix64(i) & mask)).collect();

    // Warm-up + cross-check: both resolvers must agree on every key.
    for &k in keys.iter().take(10_000) {
        assert_eq!(group.owner_idx(k), group.owner_idx_binsearch(k));
    }

    let indexed = best_of(3, || {
        let mut acc = 0usize;
        for &k in &keys {
            acc = acc.wrapping_add(group.owner_idx(k));
        }
        black_box(acc);
    });
    let binsearch = best_of(3, || {
        let mut acc = 0usize;
        for &k in &keys {
            acc = acc.wrapping_add(group.owner_idx_binsearch(k));
        }
        black_box(acc);
    });
    ResolutionRow {
        n,
        lookups,
        indexed_mops: lookups as f64 / indexed / 1e6,
        binsearch_mops: lookups as f64 / binsearch / 1e6,
        speedup: binsearch / indexed,
    }
}

/// Times `f` over `reps` repetitions; returns the best duration in seconds
/// plus the standard deviation of the per-rep `work / seconds` rates —
/// the spread the JSON exposes so a reader can tell signal from noise.
fn best_and_stddev<F: FnMut()>(reps: usize, work: f64, mut f: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut rates = Summary::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let secs = t0.elapsed().as_secs_f64();
        best = best.min(secs);
        rates.record(work / secs);
    }
    (best, rates.stddev())
}

struct TreeRow {
    n: usize,
    trees: usize,
    reps: usize,
    current_trees_per_sec: f64,
    current_stddev: f64,
    baseline_trees_per_sec: f64,
    baseline_stddev: f64,
    speedup: f64,
}

fn bench_tree_build(n: usize, trees: usize, reps: usize) -> TreeRow {
    let group = group_of(n, 2);
    let overlay = CamChord::new(group.clone());
    let sources: Vec<usize> = (0..trees as u64).map(|i| mix64(i) as usize % n).collect();

    let (current, current_stddev) = best_and_stddev(reps, trees as f64, || {
        for &src in &sources {
            black_box(overlay.multicast_tree(src).delivered());
        }
    });
    let (base, baseline_stddev) = best_and_stddev(reps, trees as f64, || {
        for &src in &sources {
            black_box(baseline::cam_chord_tree(&group, src).is_complete());
        }
    });
    TreeRow {
        n,
        trees,
        reps,
        current_trees_per_sec: trees as f64 / current,
        current_stddev,
        baseline_trees_per_sec: trees as f64 / base,
        baseline_stddev,
        speedup: base / current,
    }
}

/// A fixed-fanout token-passing actor for the event-throughput bench: each
/// message carries a remaining hop budget; non-zero budgets are forwarded
/// to the precomputed neighbor. Keeps the sharded queue under steady
/// multi-actor load with zero allocation per event.
struct TokenActor {
    next: ActorId,
    received: u64,
}

impl Actor for TokenActor {
    type Msg = u32;
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ActorId, hops: u32) {
        self.received += 1;
        if hops > 0 {
            ctx.send(self.next, hops - 1);
        }
    }
}

struct ScaleRow {
    n: usize,
    bits: u32,
    sources: usize,
    build_seconds: f64,
    stream_trees_per_sec: f64,
    mean_throughput_kbps: f64,
    events: u64,
    events_per_sec: f64,
    mt_threads: usize,
    mt_events_per_sec: f64,
    mt_speedup: f64,
    mem: MemReading,
}

/// The scale tier: builds an `n`-member group in a `2^bits` space, runs the
/// streaming multicast sweep (no tree ever materialized), then drives the
/// sharded event queue with `n` simulation actors under a token-passing
/// load. Records wall time, event throughput, and the process memory
/// reading at the end of the row.
fn bench_scale(n: usize, bits: u32, sources: usize) -> ScaleRow {
    let t0 = Instant::now();
    let group = Scenario::paper_default(6)
        .with_bits(bits)
        .with_n(n)
        .members();
    let overlay = CamChord::new(group);
    let build_seconds = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let agg = sample_tree_stats(&overlay, sources, 0x5CA1E);
    let sweep_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(agg.incomplete, 0, "scale sweep produced incomplete trees");
    let mean_throughput_kbps = agg.throughput_kbps.mean();

    // Event throughput: n actors in a ring (stride keeps successive events
    // on different shards), 4096 concurrent tokens of 256 hops each.
    let tokens = 4096.min(n);
    let hops = 256u32;
    let mut sim: Simulation<TokenActor> =
        Simulation::new(9, LatencyModel::Constant(Duration::from_micros(100)));
    let ids: Vec<ActorId> = (0..n)
        .map(|i| {
            sim.add_actor(TokenActor {
                next: ActorId((i + 1) % n),
                received: 0,
            })
        })
        .collect();
    let t0 = Instant::now();
    for t in 0..tokens {
        let start = ids[(t * 997) % n];
        sim.post(start, start, hops);
    }
    sim.run_to_completion();
    let sim_seconds = t0.elapsed().as_secs_f64();
    let events = sim.stats().delivered;
    assert_eq!(events, tokens as u64 * u64::from(hops + 1));

    // The same token workload through the multi-threaded engine mode
    // (crates/sim/src/mt.rs): constant latency makes every round a
    // `tokens`-wide same-instant batch, the MT mode's best case. One
    // worker per queue shard (K = 8), capped by the hardware. Parity with
    // the serial run is asserted, not assumed.
    let mt_threads = rss::hardware_threads().clamp(1, 8);
    let mut mt_sim: Simulation<TokenActor> =
        Simulation::new(9, LatencyModel::Constant(Duration::from_micros(100)));
    for i in 0..n {
        mt_sim.add_actor(TokenActor {
            next: ActorId((i + 1) % n),
            received: 0,
        });
    }
    let t0 = Instant::now();
    for t in 0..tokens {
        let start = ids[(t * 997) % n];
        mt_sim.post(start, start, hops);
    }
    mt_sim.run_to_completion_mt(mt_threads);
    let mt_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(mt_sim.stats(), sim.stats(), "MT run diverged from serial");
    for (i, &id) in ids.iter().enumerate() {
        debug_assert_eq!(
            mt_sim.actor(id).map(|a| a.received),
            sim.actor(ids[i]).map(|a| a.received),
        );
    }

    let row = ScaleRow {
        n,
        bits,
        sources,
        build_seconds,
        stream_trees_per_sec: sources as f64 / sweep_seconds,
        mean_throughput_kbps,
        events,
        events_per_sec: events as f64 / sim_seconds,
        mt_threads,
        mt_events_per_sec: events as f64 / mt_seconds,
        mt_speedup: sim_seconds / mt_seconds,
        mem: rss::read_memory(),
    };
    eprintln!(
        "scale             n={:>7}: build {:.1}s, {:.2} trees/s streaming, {:.2} Mevents/s serial, {:.2} Mevents/s mt×{} ({:.2}x), peak RSS {} MB",
        row.n,
        row.build_seconds,
        row.stream_trees_per_sec,
        row.events_per_sec / 1e6,
        row.mt_events_per_sec / 1e6,
        row.mt_threads,
        row.mt_speedup,
        row.mem
            .peak_rss_mb
            .map(|m| format!("{m:.0}"))
            .unwrap_or_else(|| "?".into()),
    );
    row
}

struct MultiGroupRow {
    nodes: usize,
    groups: usize,
    subscriptions: usize,
    admitted: usize,
    subscribes_per_sec: f64,
    tree_builds_per_sec: f64,
    publishes_per_sec: f64,
}

/// The pub/sub service layer under a Zipf subscription workload: the
/// subscribe phase admits `subscriptions` Zipf-drawn memberships across
/// `groups` groups over an `nodes`-member universe (every admission
/// rebuilds that group's tree against the residual-capacity ledger); the
/// publish phase replays each group's frozen tree. Both rates are
/// best-of-3.
fn bench_multigroup(nodes: usize, groups: usize, subscriptions: usize) -> MultiGroupRow {
    let universe = group_of(nodes, 3);
    let ops = MultiGroupScenario::new(nodes, groups, 4).zipf_subscriptions(subscriptions);

    let mut admitted = 0usize;
    let mut registry = GroupRegistry::new(universe.clone());
    let subscribe_replay = |reg: &mut GroupRegistry, count: &mut usize| {
        for op in &ops {
            match *op {
                GroupOp::Create { group } => reg.create_group(group).expect("fresh id"),
                GroupOp::Subscribe { group, node } => {
                    if reg
                        .subscribe(group, node)
                        .expect("known group")
                        .is_admitted()
                    {
                        *count += 1;
                    }
                }
                GroupOp::Unsubscribe { .. } | GroupOp::Publish { .. } => {}
            }
        }
    };
    let subscribe_secs = best_of(3, || {
        let mut reg = GroupRegistry::new(universe.clone());
        let mut count = 0usize;
        subscribe_replay(&mut reg, &mut count);
        black_box(count);
    });
    subscribe_replay(&mut registry, &mut admitted);
    registry.ledger().verify().expect("global bound holds");

    let publish_secs = best_of(3, || {
        let mut reached = 0usize;
        for g in registry.group_ids() {
            reached += registry.publish_counting(g).expect("known group").reached;
        }
        black_box(reached);
    });

    MultiGroupRow {
        nodes,
        groups,
        subscriptions,
        admitted,
        subscribes_per_sec: subscriptions as f64 / subscribe_secs,
        tree_builds_per_sec: admitted as f64 / subscribe_secs,
        publishes_per_sec: groups as f64 / publish_secs,
    }
}

struct SweepResult {
    n: usize,
    sources: usize,
    targets: usize,
    trees_per_rep: usize,
    current_trees_per_sec: f64,
    baseline_trees_per_sec: f64,
    speedup: f64,
}

/// The CAM-Chord slice of the Figure 6 sweep: one capacity-aware group per
/// degree target, `opts.sources` multicast trees each, mean bottleneck
/// throughput per target. Overlay construction is shared (identical work on
/// both paths, built once up front); the timed region is the sweep itself —
/// source sampling, tree construction, and aggregation across all targets.
fn bench_fig6_quick_sweep(opts: &Options) -> SweepResult {
    let mean_b = BandwidthDist::PAPER.mean();
    let overlays: Vec<(u64, CamChord)> = DEGREE_TARGETS
        .iter()
        .map(|&target| {
            let seed = opts.sub_seed(u64::from(target));
            let group = Scenario::paper_default(seed)
                .with_n(opts.n)
                .with_capacity(CapacityAssignment::PerLink {
                    p: mean_b / f64::from(target),
                    min: 4,
                    max: 4096,
                })
                .members();
            (seed, CamChord::new(group))
        })
        .collect();

    let inputs: Vec<(u64, &CamChord)> = overlays.iter().map(|(s, o)| (*s, o)).collect();

    // Current: pooled sweep over targets, pooled sources inside.
    let current_run = || -> Vec<f64> {
        parallel_sweep(inputs.clone(), |&(seed, overlay)| {
            sample_trees(overlay, opts.sources, seed ^ 1)
                .throughput_kbps
                .mean()
        })
    };
    // Baseline: one OS thread per target, serial sources, alloc-heavy
    // trees, binary-search resolution.
    let baseline_run = || -> Vec<f64> {
        baseline::parallel_sweep_spawn_per_input(inputs.clone(), |&(seed, overlay)| {
            let group = overlay.members();
            let srcs = sample_distinct_sources(group.len(), opts.sources, seed ^ 1);
            let mut sum = 0.0;
            let mut count = 0usize;
            for src in srcs {
                let tput =
                    baseline::cam_chord_tree(group, src).bottleneck_throughput_kbps(group);
                if tput.is_finite() {
                    sum += tput;
                    count += 1;
                }
            }
            sum / count as f64
        })
    };

    // Same sources, same trees ⇒ the two paths must agree on the result.
    let cur = current_run();
    let base = baseline_run();
    for (a, b) in cur.iter().zip(&base) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "current ({a}) and baseline ({b}) sweeps diverged"
        );
    }

    let trees_per_rep = DEGREE_TARGETS.len() * opts.sources;
    let t_current = best_of(3, || {
        black_box(current_run());
    });
    let t_baseline = best_of(3, || {
        black_box(baseline_run());
    });
    SweepResult {
        n: opts.n,
        sources: opts.sources,
        targets: DEGREE_TARGETS.len(),
        trees_per_rep,
        current_trees_per_sec: trees_per_rep as f64 / t_current,
        baseline_trees_per_sec: trees_per_rep as f64 / t_baseline,
        speedup: t_baseline / t_current,
    }
}

struct NetRunRow {
    frames_per_sec: f64,
    bytes_per_sec_per_core: f64,
    wakeups_per_sec: f64,
    seconds: f64,
    rounds_delivered: usize,
}

struct NetThroughputResult {
    nodes: usize,
    payload_bytes: usize,
    rounds: usize,
    mux: NetRunRow,
    legacy: NetRunRow,
    reactor_vs_legacy_speedup: f64,
    sharded_shards: usize,
    sharded_nodes_per_shard: usize,
    sharded_frames_per_sec: f64,
    sharded_rounds_delivered: usize,
    sharded_rounds: usize,
}

/// The wire-loop section: an `nodes`-node cluster on real loopback UDP
/// pushing `rounds` multicasts of `payload_bytes` to full delivery.
/// Measured twice over the same workload — the reactor loop with the
/// multiplexed single-socket transport (deadline sleeps, batched recv,
/// pooled buffers) against the frozen pre-reactor loop with per-node
/// sockets (fixed 500 µs polling grid) — plus the sharded multi-thread
/// mode. `frames_per_sec` counts decoded frames (payload + ack +
/// maintenance); both loops run single-threaded, so bytes/s is per core
/// as-is. Wakeups are only accounted by the reactor loop: the legacy
/// grid's rate is its polling frequency by construction (2000/s).
fn bench_net_throughput(
    nodes: usize,
    rounds: usize,
    payload_bytes: usize,
) -> NetThroughputResult {
    use cam_net::legacy::LegacyCluster;
    use cam_net::{Cluster, MuxUdpTransport, RetransmitPolicy, UdpTransport};
    use cam_ring::IdSpace;

    let seed = 0xBE7C;
    let space = IdSpace::PAPER;
    let ring = cam_net::sharded::members(space, nodes, seed);
    let payload = bytes::Bytes::from(vec![0xB0u8; payload_bytes]);

    // Loopback throughput at saturation is scheduler-noisy; like the
    // other sections, keep the best of two full workload replays.
    let best_net = |run: &dyn Fn() -> NetRunRow| -> NetRunRow {
        let a = run();
        let b = run();
        if a.frames_per_sec >= b.frames_per_sec {
            a
        } else {
            b
        }
    };

    let mux = best_net(&|| {
        let transport = MuxUdpTransport::bind(nodes).expect("bind mux loopback socket");
        let mut cluster = Cluster::converged(
            space,
            &ring,
            cam_core::cam_chord::CamChordProtocol,
            seed,
            transport,
            RetransmitPolicy::default(),
        );
        cluster.set_maintenance_period(Duration::from_millis(100));
        cluster.run_for(Duration::from_millis(600));
        cluster.reset_loop_stats();
        let before = cluster.counters();
        let epoch = Instant::now();
        let mut delivered = 0usize;
        for round in 0..rounds {
            let p = cluster.start_multicast(round % nodes, true, payload.clone());
            if cluster.run_until(Duration::from_secs(10), |c| c.delivery_ratio(p) >= 1.0) {
                delivered += 1;
            }
        }
        let secs = epoch.elapsed().as_secs_f64();
        let after = cluster.counters();
        let stats = cluster.loop_stats();
        NetRunRow {
            frames_per_sec: (after.frames_decoded - before.frames_decoded) as f64 / secs,
            bytes_per_sec_per_core: (after.bytes_received - before.bytes_received) as f64
                / secs,
            wakeups_per_sec: stats.wakeups as f64 / secs,
            seconds: secs,
            rounds_delivered: delivered,
        }
    });

    let legacy = best_net(&|| {
        let transport = UdpTransport::bind(nodes).expect("bind per-node loopback sockets");
        let mut cluster = LegacyCluster::converged(
            space,
            &ring,
            cam_core::cam_chord::CamChordProtocol,
            seed,
            transport,
            RetransmitPolicy::default(),
        );
        cluster.set_maintenance_period(Duration::from_millis(100));
        cluster.run_for(Duration::from_millis(600));
        let before = cluster.counters();
        let epoch = Instant::now();
        let mut delivered = 0usize;
        for round in 0..rounds {
            let p = cluster.start_multicast(round % nodes, true, payload.clone());
            if cluster.run_until(Duration::from_secs(10), |c| c.delivery_ratio(p) >= 1.0) {
                delivered += 1;
            }
        }
        let secs = epoch.elapsed().as_secs_f64();
        let after = cluster.counters();
        NetRunRow {
            frames_per_sec: (after.frames_decoded - before.frames_decoded) as f64 / secs,
            bytes_per_sec_per_core: (after.bytes_received - before.bytes_received) as f64
                / secs,
            wakeups_per_sec: 0.0,
            seconds: secs,
            rounds_delivered: delivered,
        }
    });

    // Sharded mode: the same node count split across worker threads, each
    // shard an independent ring on its own socket. Frames/s here spans
    // each shard's whole lifecycle (convergence included), aggregated over
    // the wall time of the slowest shard.
    let shards = 4usize;
    let nodes_per_shard = nodes / shards;
    let shard_rounds = rounds / shards;
    let specs: Vec<cam_net::ShardSpec<cam_core::cam_chord::CamChordProtocol>> = (0..shards)
        .map(|shard| cam_net::ShardSpec {
            shard,
            nodes: nodes_per_shard,
            rounds: shard_rounds,
            payload_len: payload_bytes,
            seed,
            protocol: cam_core::cam_chord::CamChordProtocol,
            maintenance: Duration::from_millis(100),
            warmup: Duration::from_millis(600),
            round_timeout: Duration::from_secs(10),
        })
        .collect();
    let epoch = Instant::now();
    let outcomes = cam_net::run_sharded(specs);
    let sharded_secs = epoch.elapsed().as_secs_f64();
    let sharded_frames: u64 = outcomes.iter().map(|o| o.counters.frames_decoded).sum();
    let sharded_delivered: usize = outcomes.iter().map(|o| o.rounds_delivered).sum();

    NetThroughputResult {
        nodes,
        payload_bytes,
        rounds,
        reactor_vs_legacy_speedup: mux.frames_per_sec / legacy.frames_per_sec,
        mux,
        legacy,
        sharded_shards: shards,
        sharded_nodes_per_shard: nodes_per_shard,
        sharded_frames_per_sec: sharded_frames as f64 / sharded_secs,
        sharded_rounds_delivered: sharded_delivered,
        sharded_rounds: shards * shard_rounds,
    }
}

/// Formats an `f64` for JSON (finite guaranteed by construction; keep a
/// guard anyway).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional MiB reading for JSON.
fn mem_num(x: Option<f64>) -> String {
    x.filter(|v| v.is_finite())
        .map(|v| format!("{v:.1}"))
        .unwrap_or_else(|| "null".to_string())
}

fn main() {
    let full_scale = std::env::args().any(|a| a == "--scale");
    let threads = rss::hardware_threads();
    eprintln!(
        "hotpath: {threads} hardware threads{}",
        if full_scale {
            ", full --scale tier"
        } else {
            ""
        }
    );

    let mut clock = PhaseClock::new();

    let resolution: Vec<ResolutionRow> = clock.time("owner_resolution", || {
        [(4_000usize, 2_000_000usize), (100_000, 2_000_000)]
            .into_iter()
            .map(|(n, lookups)| {
                let row = bench_resolution(n, lookups);
                eprintln!(
                "owner_idx         n={:>6}: indexed {:.1} Mops/s, binsearch {:.1} Mops/s ({:.2}x)",
                row.n, row.indexed_mops, row.binsearch_mops, row.speedup
            );
                row
            })
            .collect()
    });

    // 100k builds 24 trees per rep over 5 reps (the old 6-tree single
    // estimate was dominated by run-to-run noise; the stddev field now
    // quantifies what remains).
    let tree: Vec<TreeRow> = clock.time("tree_build", || {
        [(4_000usize, 64usize, 5usize), (100_000, 24, 5)]
            .into_iter()
            .map(|(n, trees, reps)| {
                let row = bench_tree_build(n, trees, reps);
                eprintln!(
                "multicast_tree    n={:>6}: current {:.1}±{:.1} trees/s, baseline {:.1}±{:.1} trees/s ({:.2}x)",
                row.n, row.current_trees_per_sec, row.current_stddev,
                row.baseline_trees_per_sec, row.baseline_stddev, row.speedup
            );
                row
            })
            .collect()
    });

    let sweep = clock.time("fig6_quick_sweep", || {
        bench_fig6_quick_sweep(&Options::quick())
    });
    eprintln!(
        "fig6 quick sweep  n={:>6}: current {:.1} trees/s, baseline {:.1} trees/s ({:.2}x)",
        sweep.n, sweep.current_trees_per_sec, sweep.baseline_trees_per_sec, sweep.speedup
    );

    // The scale tier: the paper's n (always measured) and the million-
    // member configuration behind --scale (a minute-plus of wall time, so
    // opt-in; CI validates the schema off the 100k row alone).
    let scale: Vec<ScaleRow> = clock.time("scale_sweep", || {
        let mut rows = vec![bench_scale(100_000, 19, 3)];
        if full_scale {
            rows.push(bench_scale(1_000_000, 24, 3));
        }
        rows
    });

    // The pub/sub service layer: 64 Zipf-popular groups sharing one
    // 4,000-node universe's capacity pool.
    let multigroup = clock.time("multigroup", || bench_multigroup(4_000, 64, 4_000));
    eprintln!(
        "multigroup        n={:>6}: {:.0} subscribes/s ({} admitted, {:.0} tree builds/s), {:.0} publishes/s over {} groups",
        multigroup.nodes,
        multigroup.subscribes_per_sec,
        multigroup.admitted,
        multigroup.tree_builds_per_sec,
        multigroup.publishes_per_sec,
        multigroup.groups,
    );

    // The wire loop: reactor-on-mux vs the frozen legacy loop, plus the
    // sharded multi-thread mode, all over real loopback UDP.
    let net = clock.time("net_throughput", || bench_net_throughput(64, 400, 256));
    eprintln!(
        "net_throughput    n={:>6}: mux {:.0} frames/s ({:.0} wakeups/s), legacy {:.0} frames/s ({:.2}x), sharded {:.0} frames/s over {} threads",
        net.nodes,
        net.mux.frames_per_sec,
        net.mux.wakeups_per_sec,
        net.legacy.frames_per_sec,
        net.reactor_vs_legacy_speedup,
        net.sharded_frames_per_sec,
        net.sharded_shards,
    );
    assert_eq!(
        net.mux.rounds_delivered, net.rounds,
        "reactor loop failed to deliver every round on loopback"
    );
    assert_eq!(
        net.legacy.rounds_delivered, net.rounds,
        "legacy loop failed to deliver every round on loopback"
    );

    let phases = clock.spans();
    for (name, secs, mem) in &phases {
        eprintln!(
            "phase             {name:<18} {secs:.2}s (peak RSS {} MB)",
            mem.peak_rss_mb
                .map(|m| format!("{m:.0}"))
                .unwrap_or_else(|| "?".into())
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cam-bench/hotpath/v1\",\n");
    json.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    json.push_str("  \"owner_resolution\": [\n");
    for (i, r) in resolution.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"lookups\": {}, \"indexed_mops\": {}, \"binsearch_mops\": {}, \"speedup\": {}}}{}\n",
            r.n,
            r.lookups,
            num(r.indexed_mops),
            num(r.binsearch_mops),
            num(r.speedup),
            if i + 1 < resolution.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"tree_build\": [\n");
    for (i, r) in tree.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"trees\": {}, \"reps\": {}, \"current_trees_per_sec\": {}, \"stddev\": {}, \"baseline_trees_per_sec\": {}, \"baseline_stddev\": {}, \"speedup\": {}}}{}\n",
            r.n,
            r.trees,
            r.reps,
            num(r.current_trees_per_sec),
            num(r.current_stddev),
            num(r.baseline_trees_per_sec),
            num(r.baseline_stddev),
            num(r.speedup),
            if i + 1 < tree.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scale\": [\n");
    for (i, r) in scale.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"bits\": {}, \"sources\": {}, \"build_seconds\": {}, \"stream_trees_per_sec\": {}, \"mean_throughput_kbps\": {}, \"events\": {}, \"events_per_sec\": {}, \"mt_threads\": {}, \"mt_events_per_sec\": {}, \"mt_speedup\": {}, \"rss_mb\": {}, \"peak_rss_mb\": {}}}{}\n",
            r.n,
            r.bits,
            r.sources,
            num(r.build_seconds),
            num(r.stream_trees_per_sec),
            num(r.mean_throughput_kbps),
            r.events,
            num(r.events_per_sec),
            r.mt_threads,
            num(r.mt_events_per_sec),
            num(r.mt_speedup),
            mem_num(r.mem.rss_mb),
            mem_num(r.mem.peak_rss_mb),
            if i + 1 < scale.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"multigroup\": {{\"nodes\": {}, \"groups\": {}, \"subscriptions\": {}, \"admitted\": {}, \"subscribes_per_sec\": {}, \"tree_builds_per_sec\": {}, \"publishes_per_sec\": {}}},\n",
        multigroup.nodes,
        multigroup.groups,
        multigroup.subscriptions,
        multigroup.admitted,
        num(multigroup.subscribes_per_sec),
        num(multigroup.tree_builds_per_sec),
        num(multigroup.publishes_per_sec),
    ));
    json.push_str("  \"phases\": [\n");
    for (i, (name, secs, mem)) in phases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_seconds\": {}, \"rss_mb\": {}, \"peak_rss_mb\": {}}}{}\n",
            name,
            num(*secs),
            mem_num(mem.rss_mb),
            mem_num(mem.peak_rss_mb),
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fig6_quick_sweep\": {{\"n\": {}, \"sources\": {}, \"targets\": {}, \"trees_per_rep\": {}, \"current_trees_per_sec\": {}, \"baseline_trees_per_sec\": {}, \"speedup\": {}}},\n",
        sweep.n,
        sweep.sources,
        sweep.targets,
        sweep.trees_per_rep,
        num(sweep.current_trees_per_sec),
        num(sweep.baseline_trees_per_sec),
        num(sweep.speedup)
    ));
    json.push_str("  \"net_throughput\": {\n");
    json.push_str(&format!(
        "    \"nodes\": {}, \"payload_bytes\": {}, \"rounds\": {},\n",
        net.nodes, net.payload_bytes, net.rounds
    ));
    json.push_str(&format!(
        "    \"mux\": {{\"frames_per_sec\": {}, \"bytes_per_sec_per_core\": {}, \"wakeups_per_sec\": {}, \"seconds\": {}, \"rounds_delivered\": {}}},\n",
        num(net.mux.frames_per_sec),
        num(net.mux.bytes_per_sec_per_core),
        num(net.mux.wakeups_per_sec),
        num(net.mux.seconds),
        net.mux.rounds_delivered
    ));
    json.push_str(&format!(
        "    \"legacy\": {{\"frames_per_sec\": {}, \"bytes_per_sec_per_core\": {}, \"seconds\": {}, \"rounds_delivered\": {}}},\n",
        num(net.legacy.frames_per_sec),
        num(net.legacy.bytes_per_sec_per_core),
        num(net.legacy.seconds),
        net.legacy.rounds_delivered
    ));
    json.push_str(&format!(
        "    \"reactor_vs_legacy_speedup\": {},\n",
        num(net.reactor_vs_legacy_speedup)
    ));
    json.push_str(&format!(
        "    \"sharded\": {{\"shards\": {}, \"nodes_per_shard\": {}, \"frames_per_sec\": {}, \"rounds_delivered\": {}, \"rounds\": {}}}\n",
        net.sharded_shards,
        net.sharded_nodes_per_shard,
        num(net.sharded_frames_per_sec),
        net.sharded_rounds_delivered,
        net.sharded_rounds
    ));
    json.push_str("  }\n");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");
    eprintln!("wrote {path}");
    print!("{json}");
}
