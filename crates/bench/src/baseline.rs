//! The pre-optimization hot path, preserved verbatim for benchmarking.
//!
//! `BENCH_hotpath.json` must report speedups measured *in the same run*
//! against the code this repository shipped before the hot-path overhaul,
//! so that baseline lives on here:
//!
//! * **ring resolution** by `partition_point` binary search (now exposed by
//!   `MemberSet` as the `*_binsearch` methods);
//! * **tree construction** with per-member `Vec<Vec<usize>>` children,
//!   `Vec<Option<usize>>` bookkeeping, a fresh child-selection `Vec` per
//!   node, and a fresh work queue per tree;
//! * **sweep parallelism** by spawning one OS thread per input
//!   (`crossbeam::scope` then; scoped `std::thread` here — same shape);
//! * **source sampling** strictly serial within a configuration.
//!
//! Keep this module in sync with nothing: it is intentionally frozen.

use cam_core::cam_chord::multicast::ChildSelection;
use cam_core::cam_chord::neighbors::level_seq_of;
use cam_overlay::MemberSet;
use cam_ring::math::pow_saturating;
use cam_ring::Id;

/// The old tree record: option-boxed bookkeeping and one child vector per
/// member, allocated up front.
#[derive(Debug, Clone)]
pub struct BaselineTree {
    source: usize,
    parent: Vec<Option<usize>>,
    hops: Vec<Option<u32>>,
    children: Vec<Vec<usize>>,
    delivered: usize,
}

impl BaselineTree {
    /// Starts a tree for `n` members rooted at `source`.
    pub fn new(n: usize, source: usize) -> Self {
        assert!(n > 0 && source < n);
        let mut hops = vec![None; n];
        hops[source] = Some(0);
        BaselineTree {
            source,
            parent: vec![None; n],
            hops,
            children: vec![Vec::new(); n],
            delivered: 1,
        }
    }

    /// Records a delivery, returning `false` on duplicates.
    pub fn deliver(&mut self, parent: usize, child: usize) -> bool {
        assert_ne!(parent, child);
        let parent_hops = self.hops[parent].expect("parent has not received the message");
        if self.hops[child].is_some() {
            return false;
        }
        self.hops[child] = Some(parent_hops + 1);
        self.parent[child] = Some(parent);
        self.children[parent].push(child);
        self.delivered += 1;
        true
    }

    /// The root.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Whether every member was reached.
    pub fn is_complete(&self) -> bool {
        self.delivered == self.parent.len()
    }

    /// Direct children of `member`.
    pub fn children_of(&self, member: usize) -> &[usize] {
        &self.children[member]
    }

    /// The old bottleneck-throughput computation (min over internal nodes
    /// of `B_x / d_x`).
    pub fn bottleneck_throughput_kbps(&self, group: &MemberSet) -> f64 {
        let mut min = f64::INFINITY;
        for m in 0..self.parent.len() {
            let d = self.children[m].len();
            if d > 0 {
                min = min.min(group.member(m).upload_kbps / d as f64);
            }
        }
        min
    }
}

/// The old `select_children`: a fresh output vector per call, every owner
/// resolved by binary search.
pub fn select_children(
    group: &MemberSet,
    x_idx: usize,
    k: Id,
    selection: ChildSelection,
) -> Vec<(usize, Id)> {
    let space = group.space();
    let x = group.member(x_idx).id;
    let c = u64::from(group.member(x_idx).capacity);
    if space.seg_len(x, k) == 0 {
        return Vec::new();
    }

    let (i, j) = level_seq_of(space, x, group.member(x_idx).capacity, k);
    let mut out: Vec<(usize, Id)> = Vec::new();
    let mut k_prime = k;

    let consider = |target: Id, k_prime: &mut Id, out: &mut Vec<(usize, Id)>| {
        let child_idx = group.owner_idx_binsearch(target);
        let child_id = group.member(child_idx).id;
        if space.in_segment(child_id, x, *k_prime) {
            out.push((child_idx, *k_prime));
        }
        *k_prime = space.sub(target, 1);
    };

    let ci = pow_saturating(c, i);
    for m in (1..=j).rev() {
        consider(space.add(x, m * ci), &mut k_prime, &mut out);
    }
    if i >= 1 && c > j + 1 {
        let ci1 = pow_saturating(c, i - 1);
        let slots = c - j - 1;
        let b = c - j;
        for t in 1..=slots {
            let a = c * (c - j - t);
            let seq = match selection {
                ChildSelection::Ceil => a.div_ceil(b),
                ChildSelection::Floor => a / b,
            };
            if seq == 0 {
                continue;
            }
            consider(space.add(x, seq * ci1), &mut k_prime, &mut out);
        }
    }
    consider(space.add(x, 1), &mut k_prime, &mut out);
    out
}

/// The old CAM-Chord multicast driver: fresh queue per tree, fresh
/// selection vector per node.
pub fn cam_chord_tree(group: &MemberSet, source: usize) -> BaselineTree {
    let space = group.space();
    let mut tree = BaselineTree::new(group.len(), source);
    let mut queue: std::collections::VecDeque<(usize, Id)> = std::collections::VecDeque::new();
    queue.push_back((source, space.sub(group.member(source).id, 1)));
    while let Some((node, k)) = queue.pop_front() {
        for (child, region_end) in select_children(group, node, k, ChildSelection::Ceil) {
            if tree.deliver(node, child) {
                queue.push_back((child, region_end));
            }
        }
    }
    tree
}

/// The old `parallel_sweep`: one OS thread per input, regardless of core
/// count.
pub fn parallel_sweep_spawn_per_input<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let mut out: Vec<Option<O>> = inputs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, input) in out.iter_mut().zip(&inputs) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(input));
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_core::CamChord;
    use cam_overlay::{Member, StaticOverlay};
    use cam_ring::IdSpace;

    /// The frozen baseline and the optimized path must still build the same
    /// trees — otherwise the benchmark compares different algorithms.
    #[test]
    fn baseline_tree_matches_current() {
        let group = MemberSet::new(
            IdSpace::new(12),
            (0..500u64)
                .map(|i| Member::with_capacity(Id(i * 8 + 1), 4 + (i % 5) as u32))
                .collect(),
        )
        .unwrap();
        let overlay = CamChord::new(group.clone());
        for src in [0usize, 123, 499] {
            let old = cam_chord_tree(&group, src);
            let new = overlay.multicast_tree(src);
            assert!(old.is_complete() && new.is_complete());
            for m in 0..group.len() {
                assert_eq!(old.children_of(m), new.children_of(m), "member {m}");
            }
            assert_eq!(
                old.bottleneck_throughput_kbps(&group),
                new.bottleneck_throughput_kbps(&group)
            );
        }
    }

    #[test]
    fn spawn_per_input_preserves_order() {
        let out = parallel_sweep_spawn_per_input((0..16).collect(), |&x: &i32| x * 3);
        assert_eq!(out, (0..16).map(|x| x * 3).collect::<Vec<_>>());
    }
}
