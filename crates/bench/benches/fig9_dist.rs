//! Figure 9 bench: CAM-Chord path-length distributions per capacity range.

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("cam_chord_path_distributions", |b| {
        b.iter(|| cam_experiments::fig9::run(&opts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
