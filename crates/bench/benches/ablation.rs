//! Ablation benches: the DESIGN.md design-choice variants (Ext-B/C).

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("ceil_floor_and_flood_edges", |b| {
        b.iter(|| cam_experiments::ext::ablation(&opts))
    });
    group.bench_function("maintenance_overhead", |b| {
        b.iter(|| cam_experiments::ext::overhead(&opts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
