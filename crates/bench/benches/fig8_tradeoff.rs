//! Figure 8 bench: regenerates the throughput/latency trade-off frontier.

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("throughput_latency_frontier", |b| {
        b.iter(|| cam_experiments::fig8::run(&opts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
