//! Figure 7 bench: regenerates the throughput-ratio-vs-bandwidth-range table.

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("ratio_vs_bandwidth_range", |b| {
        b.iter(|| {
            let table = cam_experiments::fig7::run(&opts);
            // The headline property must hold in every run.
            for s in &table.series {
                if s.name.starts_with("CAM") {
                    assert!(s.points.iter().all(|&(_, r)| r > 1.0));
                }
            }
            table
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
