//! Figure 10 bench: CAM-Koorde path-length distributions per capacity range.

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("cam_koorde_path_distributions", |b| {
        b.iter(|| cam_experiments::fig10::run(&opts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
