//! Figure 11 bench: average path length vs average capacity (+ bound).

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("path_length_vs_capacity", |b| {
        b.iter(|| cam_experiments::fig11::run(&opts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
