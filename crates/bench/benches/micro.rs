//! Micro-benchmarks: the primitive operations underlying every experiment.

use cam_core::{CamChord, CamKoorde};
use cam_overlay::StaticOverlay;
use cam_ring::Id;
use cam_workload::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    for n in [1_000usize, 10_000, 100_000] {
        let members = Scenario::paper_default(1).with_n(n).members();
        let chord = CamChord::new(members.clone());
        let koorde = CamKoorde::new(members.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let space = members.space();
        group.bench_with_input(BenchmarkId::new("cam_chord", n), &n, |b, _| {
            b.iter(|| {
                let origin = rng.gen_range(0..n);
                let key = Id(rng.gen_range(0..space.size()));
                chord.lookup(origin, key).hops()
            })
        });
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::new("cam_koorde", n), &n, |b, _| {
            b.iter(|| {
                let origin = rng2.gen_range(0..n);
                let key = Id(rng2.gen_range(0..space.size()));
                koorde.lookup(origin, key).hops()
            })
        });
    }
    group.finish();
}

/// `MemberSet::owner_idx` — the precomputed bucket index against the
/// `partition_point` binary search it replaced (kept as
/// `owner_idx_binsearch` for exactly this comparison).
fn bench_owner_idx(c: &mut Criterion) {
    let mut group = c.benchmark_group("owner_idx");
    for n in [4_000usize, 100_000] {
        let members = Scenario::paper_default(7).with_n(n).members();
        let space = members.space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let keys: Vec<Id> = (0..1024)
            .map(|_| Id(rng.gen_range(0..space.size())))
            .collect();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) & 1023;
                members.owner_idx(keys[i])
            })
        });
        let mut j = 0usize;
        group.bench_with_input(BenchmarkId::new("binsearch", n), &n, |b, _| {
            b.iter(|| {
                j = (j + 1) & 1023;
                members.owner_idx_binsearch(keys[j])
            })
        });
    }
    group.finish();
}

fn bench_multicast_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicast_tree");
    group.sample_size(20);
    for n in [1_000usize, 4_000, 10_000, 100_000] {
        let members = Scenario::paper_default(4).with_n(n).members();
        let chord = CamChord::new(members.clone());
        group.bench_with_input(BenchmarkId::new("cam_chord", n), &n, |b, _| {
            b.iter(|| {
                let t = chord.multicast_tree(0);
                debug_assert!(t.is_complete());
                t.delivered()
            })
        });
        group.bench_with_input(BenchmarkId::new("cam_chord_baseline", n), &n, |b, _| {
            b.iter(|| cam_bench::baseline::cam_chord_tree(&members, 0).is_complete())
        });
        let koorde = CamKoorde::new(members.clone());
        group.bench_with_input(BenchmarkId::new("cam_koorde", n), &n, |b, _| {
            b.iter(|| koorde.multicast_tree(0).delivered())
        });
    }
    group.finish();
}

fn bench_overlay_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let members = Scenario::paper_default(5).with_n(n).members();
        group.bench_with_input(BenchmarkId::new("cam_koorde_adjacency", n), &n, |b, _| {
            b.iter(|| CamKoorde::new(members.clone()).members().len())
        });
        group.bench_with_input(BenchmarkId::new("member_generation", n), &n, |b, _| {
            b.iter(|| Scenario::paper_default(6).with_n(n).members().len())
        });
    }
    group.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let data = vec![0xA5u8; 4096];
    c.bench_function("sha1_4k", |b| {
        b.iter(|| cam_ring::sha1::Sha1::digest(&data))
    });
}

criterion_group!(
    benches,
    bench_lookup,
    bench_owner_idx,
    bench_multicast_tree,
    bench_overlay_construction,
    bench_sha1
);
criterion_main!(benches);
