//! Figure 6 bench: regenerates the throughput-vs-children table.
//!
//! Full-scale numbers: `cargo run --release -p cam-experiments --bin repro -- fig6`.

use cam_bench::bench_options;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("throughput_vs_children", |b| {
        b.iter(|| {
            let table = cam_experiments::fig6::run(&opts);
            assert_eq!(table.series.len(), 6);
            table
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
