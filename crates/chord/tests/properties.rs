//! Property tests for the Chord baseline: lookup correctness, broadcast
//! exactly-once coverage, and El-Ansary tree structure, over arbitrary
//! groups and bases.

use cam_overlay::{Member, MemberSet, StaticOverlay};
use cam_ring::{Id, IdSpace};
use chord_overlay::Chord;
use proptest::prelude::*;

fn arb_group() -> impl Strategy<Value = (MemberSet, u32)> {
    (1usize..200, 2u32..20, 0u64..500).prop_map(|(n, base, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = IdSpace::new(13);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(rng.gen_range(0..space.size()));
        }
        let group = MemberSet::new(
            space,
            ids.iter()
                .map(|&v| Member::with_capacity(Id(v), 8))
                .collect(),
        )
        .unwrap();
        (group, base)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lookups find the oracle owner for any base, origin, and key.
    #[test]
    fn lookup_oracle((group, base) in arb_group(), key in 0u64..(1 << 13), origin_sel in 0usize..1000) {
        let chord = Chord::new(group.clone(), base);
        let origin = origin_sel % group.len();
        let key = Id(key);
        prop_assert_eq!(chord.lookup(origin, key).owner, group.owner_idx(key));
    }

    /// El-Ansary broadcast delivers exactly once from any source.
    #[test]
    fn broadcast_exactly_once((group, base) in arb_group(), src_sel in 0usize..1000) {
        let chord = Chord::new(group.clone(), base);
        let src = src_sel % group.len();
        let tree = chord.multicast_tree(src);
        prop_assert!(tree.is_complete());
        prop_assert_eq!(tree.delivered(), group.len());
        // Tree edges = members − 1.
        let edges: usize = (0..group.len()).map(|m| tree.fanout(m)).sum();
        prop_assert_eq!(edges, group.len() - 1);
    }

    /// Finger targets are sorted by offset, unique, and within the space.
    #[test]
    fn finger_targets_well_formed((group, base) in arb_group(), x in 0u64..(1 << 13)) {
        let chord = Chord::new(group.clone(), base);
        let space = group.space();
        let targets = chord.finger_targets(Id(x));
        let mut last = 0u64;
        for t in &targets {
            prop_assert!(space.contains(*t));
            let off = space.seg_len(Id(x), *t);
            prop_assert!(off > last || last == 0 && off == 1, "offsets ascend");
            last = off;
        }
    }

    /// The number of distinct neighbors is O((k−1)·log_k N).
    #[test]
    fn neighbor_count_bound((group, base) in arb_group(), m_sel in 0usize..1000) {
        let chord = Chord::new(group.clone(), base);
        let m = m_sel % group.len();
        let levels = (13.0 / f64::from(base).log2()).ceil();
        let bound = (f64::from(base - 1) * levels) as usize + 1;
        prop_assert!(chord.neighbor_count(m) <= bound);
    }
}

#[test]
fn el_ansary_subtree_depths_are_skewed() {
    // The paper's §3.4 critique: the root's subtrees range from O(log n)
    // deep (the successor side) to O(1) (the far finger side).
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let space = IdSpace::new(19);
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < 5000 {
        ids.insert(rng.gen_range(0..space.size()));
    }
    let group = MemberSet::new(
        space,
        ids.iter()
            .map(|&v| Member::with_capacity(Id(v), 8))
            .collect(),
    )
    .unwrap();
    let chord = Chord::new(group, 2);
    let tree = chord.multicast_tree(0);
    assert!(tree.is_complete());
    // Depth below each root child.
    let mut depths = Vec::new();
    for &child in tree.children_of(0) {
        let mut max_depth = 0u32;
        let mut stack = vec![(child, 1u32)];
        while let Some((node, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            for &c in tree.children_of(node) {
                stack.push((c, d + 1));
            }
        }
        depths.push(max_depth);
    }
    let min = depths.iter().min().unwrap();
    let max = depths.iter().max().unwrap();
    assert!(
        max - min >= 3,
        "subtree depths should be skewed (El-Ansary imbalance): {depths:?}"
    );
}
