#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Chord baseline: the capacity-*oblivious* overlay the paper compares
//! CAM-Chord against.
//!
//! This crate implements Chord (Stoica et al., SIGCOMM'01) generalized to
//! base-`k` fingers — node `x` tracks the owners of `(x + j·k^i) mod N`
//! for `j ∈ [1..k−1]` — so the baseline's average out-degree can be swept
//! like the paper's Figure 6 does. `k = 2` is exactly classic Chord
//! (fingers at `x + 2^i`).
//!
//! Multicast is the El-Ansary et al. broadcast (IPTPS'03) the paper cites
//! as the state of the art for Chord: a node responsible for the segment
//! `(x, limit]` forwards the message to **every** finger inside the
//! segment, handing each the sub-segment up to the next finger. Node
//! degree in the broadcast tree therefore varies with position — from 1 to
//! `(k−1)·log_k n` at the root — *independent of node capacity*, which is
//! precisely the throughput weakness CAM-Chord fixes (paper §3.4).
//!
//! # Example
//!
//! ```
//! use chord_overlay::Chord;
//! use cam_overlay::{Member, MemberSet, StaticOverlay};
//! use cam_ring::{Id, IdSpace};
//!
//! let members: Vec<Member> = (0..64u64)
//!     .map(|i| Member::with_capacity(Id(i * 8 + 1), 8))
//!     .collect();
//! let chord = Chord::new(MemberSet::new(IdSpace::new(9), members)?, 2);
//! let tree = chord.multicast_tree(0);
//! assert!(tree.is_complete());
//! # Ok::<(), cam_overlay::peer::BuildMemberSetError>(())
//! ```

use cam_overlay::{LookupResult, MemberSet, MulticastTree, StaticOverlay};
use cam_ring::math::level_and_seq;
use cam_ring::Id;

/// A resolved base-`k` Chord overlay (capacity-oblivious baseline).
#[derive(Debug, Clone)]
pub struct Chord {
    group: MemberSet,
    base: u32,
}

impl Chord {
    /// Wraps a group as a base-`k` Chord overlay. `base == 2` is classic
    /// Chord.
    ///
    /// Member capacities are ignored by construction — that is the point of
    /// the baseline — but they are still used by throughput *accounting*
    /// (a node's children count is compared against its bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    pub fn new(group: MemberSet, base: u32) -> Self {
        assert!(base >= 2, "Chord base must be >= 2, got {base}");
        Chord { group, base }
    }

    /// The finger base `k`.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Finger target identifiers of node `x`: `(x + j·k^i) mod N` for
    /// `j ∈ [1..k−1]`, `j·k^i < N`, in increasing clockwise offset.
    pub fn finger_targets(&self, x: Id) -> Vec<Id> {
        let space = self.group.space();
        let k = u64::from(self.base);
        let n = space.size();
        let mut out = Vec::new();
        let mut stride = 1u64;
        while stride < n {
            for j in 1..k {
                match j.checked_mul(stride) {
                    Some(off) if off < n => out.push(space.add(x, off)),
                    _ => break,
                }
            }
            stride = match stride.checked_mul(k) {
                Some(s) => s,
                None => break,
            };
        }
        out
    }

    /// El-Ansary broadcast children of `x_idx` for segment `(x, limit]`:
    /// every distinct finger owner inside the segment, paired with the end
    /// of the sub-segment it becomes responsible for.
    pub fn broadcast_children(&self, x_idx: usize, limit: Id) -> Vec<(usize, Id)> {
        let space = self.group.space();
        let x = self.group.member(x_idx).id;
        if space.seg_len(x, limit) == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut k_prime = limit;
        // Walk fingers from the farthest clockwise down to the successor;
        // each accepted child covers (child, k'] and k' then retreats to
        // just below the finger target.
        let mut targets = self.finger_targets(x);
        targets.sort_by_key(|&t| std::cmp::Reverse(space.seg_len(x, t)));
        for target in targets {
            if space.seg_len(x, target) > space.seg_len(x, k_prime) {
                continue; // finger beyond the remaining segment
            }
            let child_idx = self.group.owner_idx(target);
            let child_id = self.group.member(child_idx).id;
            if space.in_segment(child_id, x, k_prime) {
                out.push((child_idx, k_prime));
            }
            k_prime = space.sub(target, 1);
            if k_prime == x {
                break;
            }
        }
        out
    }
}

impl StaticOverlay for Chord {
    fn members(&self) -> &MemberSet {
        &self.group
    }

    /// Chord's greedy closest-preceding-finger lookup, expressed with the
    /// same level/sequence arithmetic as CAM-Chord (base `k` fixed).
    fn lookup(&self, origin: usize, key: Id) -> LookupResult {
        let space = self.group.space();
        let mut cur = origin;
        let mut path = vec![origin];
        loop {
            assert!(
                path.len() <= self.group.len() + 1,
                "Chord lookup exceeded n hops — routing loop"
            );
            let x = self.group.member(cur).id;
            let pred = self.group.member(self.group.prev_idx(cur)).id;
            if key == x || space.in_segment(key, pred, x) || self.group.len() == 1 {
                return LookupResult { owner: cur, path };
            }
            let succ_idx = self.group.next_idx(cur);
            if space.in_segment(key, x, self.group.member(succ_idx).id) {
                return LookupResult {
                    owner: succ_idx,
                    path,
                };
            }
            let dist = space.seg_len(x, key);
            let (i, j) = level_and_seq(dist, u64::from(self.base));
            let target = space.add(
                x,
                j * cam_ring::math::pow_saturating(u64::from(self.base), i),
            );
            let nb_idx = self.group.owner_idx(target);
            let nb = self.group.member(nb_idx).id;
            if space.in_segment(key, x, nb) {
                return LookupResult {
                    owner: nb_idx,
                    path,
                };
            }
            cur = nb_idx;
            path.push(cur);
        }
    }

    fn multicast_tree(&self, source: usize) -> MulticastTree {
        let space = self.group.space();
        let mut tree = MulticastTree::new(self.group.len(), source);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((source, space.sub(self.group.member(source).id, 1)));
        while let Some((node, limit)) = queue.pop_front() {
            for (child, sub_limit) in self.broadcast_children(node, limit) {
                let fresh = tree.deliver(node, child);
                debug_assert!(fresh, "duplicate delivery in El-Ansary broadcast");
                if fresh {
                    queue.push_back((child, sub_limit));
                }
            }
        }
        tree
    }

    fn neighbor_count(&self, member: usize) -> usize {
        let x = self.group.member(member).id;
        let mut owners: Vec<usize> = self
            .finger_targets(x)
            .into_iter()
            .map(|t| self.group.owner_idx(t))
            .filter(|&i| i != member)
            .collect();
        owners.sort_unstable();
        owners.dedup();
        owners.len()
    }

    fn name(&self) -> &'static str {
        "Chord"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_overlay::Member;
    use cam_ring::IdSpace;
    use rand::{Rng, SeedableRng};

    fn random_group(n: usize, bits: u32, seed: u64) -> MemberSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = IdSpace::new(bits);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(rng.gen_range(0..space.size()));
        }
        MemberSet::new(
            space,
            ids.iter()
                .map(|&v| Member::with_capacity(Id(v), 8))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn binary_fingers_are_powers_of_two() {
        let g = random_group(32, 10, 1);
        let chord = Chord::new(g, 2);
        let f = chord.finger_targets(Id(0));
        assert_eq!(
            f.iter().map(|t| t.value()).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        );
    }

    #[test]
    fn lookup_matches_oracle_binary_and_base16() {
        let g = random_group(150, 12, 2);
        for base in [2u32, 16] {
            let chord = Chord::new(g.clone(), base);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            for _ in 0..300 {
                let origin = rng.gen_range(0..g.len());
                let key = Id(rng.gen_range(0..g.space().size()));
                let r = chord.lookup(origin, key);
                assert_eq!(r.owner, g.owner_idx(key), "base {base}");
            }
        }
    }

    #[test]
    fn lookup_hops_logarithmic() {
        let g = random_group(2000, 19, 4);
        let chord = Chord::new(g.clone(), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut total = 0u64;
        for _ in 0..200 {
            let origin = rng.gen_range(0..g.len());
            let key = Id(rng.gen_range(0..g.space().size()));
            total += u64::from(chord.lookup(origin, key).hops());
        }
        let avg = total as f64 / 200.0;
        // log2(2000) ≈ 11; expected ≈ half of that.
        assert!(avg < 13.0, "avg hops {avg}");
        assert!(avg > 2.0, "avg hops {avg} suspiciously low");
    }

    #[test]
    fn broadcast_reaches_everyone_exactly_once() {
        for n in [1usize, 2, 3, 10, 100, 500] {
            let g = random_group(n, 12, n as u64);
            let chord = Chord::new(g.clone(), 2);
            for src in [0, n / 2, n - 1] {
                let t = chord.multicast_tree(src);
                assert!(t.is_complete(), "n={n} src={src}");
            }
        }
    }

    #[test]
    fn broadcast_root_degree_is_log_n() {
        let g = random_group(1000, 19, 7);
        let chord = Chord::new(g.clone(), 2);
        let t = chord.multicast_tree(0);
        // Root forwards to one finger owner per populated level:
        // ≈ log2(1000) ≈ 10 (distinct owners may be fewer).
        let d = t.fanout(0);
        assert!((6..=19).contains(&d), "root degree {d}");
        // Node degree varies — the tree is unbalanced (paper's critique).
        let depths = t.stats();
        assert!(depths.max_fanout >= d);
    }

    #[test]
    fn base_k_increases_degree_reduces_depth() {
        let g = random_group(2000, 19, 8);
        let narrow = Chord::new(g.clone(), 2).multicast_tree(0);
        let wide = Chord::new(g.clone(), 16).multicast_tree(0);
        assert!(wide.stats().depth < narrow.stats().depth);
        assert!(
            wide.stats().avg_children_per_internal > narrow.stats().avg_children_per_internal
        );
    }

    #[test]
    fn capacity_is_ignored_by_construction() {
        // Two groups identical except for capacities: same trees.
        let space = IdSpace::new(10);
        let make = |cap: u32| {
            MemberSet::new(
                space,
                (0..50u64)
                    .map(|i| Member::with_capacity(Id(i * 20 + 3), cap))
                    .collect(),
            )
            .unwrap()
        };
        let a = Chord::new(make(2), 2).multicast_tree(5);
        let b = Chord::new(make(50), 2).multicast_tree(5);
        for m in 0..50 {
            assert_eq!(a.children_of(m), b.children_of(m));
        }
    }

    #[test]
    #[should_panic(expected = "base must be >= 2")]
    fn base_one_rejected() {
        let g = random_group(4, 8, 9);
        Chord::new(g, 1);
    }
}
