//! Property tests for the precomputed bucket index behind
//! [`MemberSet::owner_idx`] / `successor_idx` / `predecessor_idx`.
//!
//! The binary-search resolvers (`*_binsearch`) are the reference: the
//! indexed resolvers must agree with them on **every key of the identifier
//! space** for arbitrary member sets — including the wrap-around region
//! past the last member and single-member groups.

use std::collections::BTreeSet;

use cam_overlay::{Member, MemberSet};
use cam_ring::{Id, IdSpace};
use proptest::prelude::*;

fn build(bits: u32, raw_ids: Vec<u64>) -> MemberSet {
    let ids: BTreeSet<u64> = raw_ids.into_iter().collect();
    MemberSet::new(
        IdSpace::new(bits),
        ids.iter()
            .map(|&v| Member::with_capacity(Id(v), 4))
            .collect(),
    )
    .expect("deduplicated ids build a valid member set")
}

fn assert_resolvers_agree(group: &MemberSet) {
    for k in 0..group.space().size() {
        let k = Id(k);
        assert_eq!(
            group.owner_idx(k),
            group.owner_idx_binsearch(k),
            "owner of {k:?}"
        );
        assert_eq!(
            group.successor_idx(k),
            group.successor_idx_binsearch(k),
            "successor of {k:?}"
        );
        assert_eq!(
            group.predecessor_idx(k),
            group.predecessor_idx_binsearch(k),
            "predecessor of {k:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exhaustive agreement over the whole key space of random groups.
    #[test]
    fn indexed_resolution_matches_binsearch(
        (bits, raw_ids) in (3u32..=11).prop_flat_map(|bits| {
            (Just(bits), prop::collection::vec(0u64..(1u64 << bits), 1..200))
        })
    ) {
        let group = build(bits, raw_ids);
        assert_resolvers_agree(&group);
    }

    /// Dense groups stress buckets holding several members each.
    #[test]
    fn dense_groups_agree(raw_ids in prop::collection::vec(0u64..64, 40..64)) {
        let group = build(6, raw_ids);
        assert_resolvers_agree(&group);
    }
}

/// A single member owns every key, from both resolvers, wherever it sits.
#[test]
fn single_member_owns_everything() {
    for id in [0u64, 1, 100, 255] {
        let group = build(8, vec![id]);
        assert_resolvers_agree(&group);
        for k in [Id(0), Id(id), Id(255)] {
            assert_eq!(group.owner_idx(k), 0);
        }
    }
}

/// Keys past the last member wrap to the first member (the ring seam).
#[test]
fn wrap_around_keys_resolve_to_first_member() {
    let group = build(8, vec![10, 50, 200]);
    assert_resolvers_agree(&group);
    for k in [201u64, 230, 255] {
        assert_eq!(group.owner_idx(Id(k)), 0, "key {k} wraps to id 10");
        assert_eq!(group.successor_idx(Id(k)), 0);
    }
    assert_eq!(
        group.predecessor_idx(Id(5)),
        2,
        "below the first id wraps back"
    );
}
