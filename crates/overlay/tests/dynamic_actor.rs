//! Message-level tests of the dynamic DHT machinery: stabilization rules,
//! failure detection, finger pruning, lookup TTLs — exercised through a
//! minimal ring protocol so the actor logic is tested independently of the
//! CAM routing algorithms.

use std::collections::HashMap;

use cam_overlay::dynamic::{DhtActor, DhtMsg, DhtProtocol, DynamicNetwork};
use cam_overlay::Member;
use cam_ring::{Id, IdSpace, Segment};
use cam_sim::engine::{ActorId, Simulation};
use cam_sim::time::Duration;
use cam_sim::LatencyModel;

/// A bare-bones protocol: a handful of evenly spaced fingers, greedy
/// preceding-neighbor routing, region-splitting multicast across resolved
/// fingers.
#[derive(Debug, Clone, Copy)]
struct MiniRing;

impl DhtProtocol for MiniRing {
    fn neighbor_targets(&self, space: IdSpace, me: &Member) -> Vec<Id> {
        (1..=4u64)
            .map(|i| space.add(me.id, i * space.size() / 5))
            .collect()
    }

    fn next_hop(
        &self,
        space: IdSpace,
        me: &Member,
        neighbors: &[Member],
        successor: &Member,
        _predecessor: Option<&Member>,
        key: Id,
        _state: &mut u64,
    ) -> Option<Id> {
        if space.in_segment(key, me.id, successor.id) {
            return None;
        }
        neighbors
            .iter()
            .filter(|m| space.in_segment(m.id, me.id, key))
            .max_by_key(|m| space.seg_len(me.id, m.id))
            .map(|m| m.id)
    }

    fn multicast_children(
        &self,
        space: IdSpace,
        me: &Member,
        neighbors: &[Member],
        successor: &Member,
        region: Option<Segment>,
    ) -> Vec<(Id, Option<Segment>)> {
        let region = region.unwrap_or_else(|| Segment::all_but(space, me.id));
        let mut cuts: Vec<Id> = neighbors
            .iter()
            .map(|m| m.id)
            .chain([successor.id])
            .filter(|&id| region.contains(space, id))
            .collect();
        cuts.sort_by_key(|&id| space.seg_len(me.id, id));
        cuts.dedup();
        let mut out = Vec::new();
        for (i, &c) in cuts.iter().enumerate() {
            let end = cuts
                .get(i + 1)
                .map(|&n| space.sub(n, 1))
                .unwrap_or(region.to);
            out.push((c, Some(Segment::new(c, end))));
        }
        out
    }
}

const SPACE: IdSpace = IdSpace::new(16);

fn members(n: u64) -> Vec<Member> {
    (0..n)
        .map(|i| Member::with_capacity(Id(i * (SPACE.size() / n) + 3), 6))
        .collect()
}

fn wan() -> LatencyModel {
    LatencyModel::Constant(Duration::from_millis(10))
}

#[test]
fn converged_ring_pointers_are_correct() {
    let m = members(32);
    let net = DynamicNetwork::converged(SPACE, &m, MiniRing, 1, wan());
    for (i, (member, actor)) in net.actors().iter().enumerate() {
        let a = net.sim.actor(*actor).unwrap();
        assert_eq!(a.member().id, member.id);
        let expected_succ = m[(i + 1) % m.len()].id;
        assert_eq!(a.successor().unwrap().id, expected_succ);
        let expected_pred = m[(i + m.len() - 1) % m.len()].id;
        assert_eq!(a.predecessor().unwrap().id, expected_pred);
        assert!(a.is_joined());
        assert!(!a.neighbor_members().is_empty());
    }
}

#[test]
fn stabilization_is_quiet_on_a_healthy_ring() {
    // On an already-converged ring, maintenance must not churn pointers.
    let m = members(16);
    let mut net = DynamicNetwork::converged(SPACE, &m, MiniRing, 2, wan());
    net.sim.run_until(net.sim.now() + Duration::from_secs(30));
    for (i, (_, actor)) in net.actors().iter().enumerate() {
        let a = net.sim.actor(*actor).unwrap();
        assert_eq!(a.successor().unwrap().id, m[(i + 1) % m.len()].id);
        assert_eq!(
            a.predecessor().unwrap().id,
            m[(i + m.len() - 1) % m.len()].id
        );
    }
}

#[test]
fn successor_failure_detected_and_promoted() {
    let m = members(16);
    let mut net = DynamicNetwork::converged(SPACE, &m, MiniRing, 3, wan());
    // Kill member 5 (successor of member 4).
    let victim = net.actors()[5];
    let observer = net.actors()[4].1;
    net.sim.kill(victim.1);
    net.sim.run_until(net.sim.now() + Duration::from_secs(10));
    let a = net.sim.actor(observer).unwrap();
    assert_eq!(
        a.successor().unwrap().id,
        m[6].id,
        "successor should skip the dead node"
    );
    // The dead node's successor clears its stale predecessor and adopts
    // the observer via notify.
    let after = net.sim.actor(net.actors()[6].1).unwrap();
    assert_eq!(after.predecessor().unwrap().id, m[4].id);
}

#[test]
fn fingers_pointing_at_dead_nodes_get_pruned() {
    let m = members(40);
    let mut net = DynamicNetwork::converged(SPACE, &m, MiniRing, 4, wan());
    // Kill a quarter of the ring.
    let victims: Vec<ActorId> = net
        .actors()
        .iter()
        .skip(2)
        .step_by(4)
        .map(|(_, a)| *a)
        .collect();
    for v in &victims {
        net.sim.kill(*v);
    }
    net.sim.run_until(net.sim.now() + Duration::from_secs(60));
    let live: std::collections::HashSet<u64> =
        net.live_members().iter().map(|mm| mm.id.value()).collect();
    let mut stale = 0;
    let mut total = 0;
    for (_, a) in net.actors() {
        if let Some(actor) = net.sim.actor(*a) {
            for nb in actor.neighbor_members() {
                total += 1;
                if !live.contains(&nb.id.value()) {
                    stale += 1;
                }
            }
        }
    }
    assert!(
        stale * 10 <= total,
        "more than 10% stale fingers after repair: {stale}/{total}"
    );
}

#[test]
fn multicast_covers_converged_miniring() {
    let m = members(64);
    let mut net = DynamicNetwork::converged(SPACE, &m, MiniRing, 5, wan());
    let source = net.actors()[7].1;
    let payload = net.start_multicast(source, true);
    net.sim.run_until(net.sim.now() + Duration::from_secs(10));
    assert_eq!(net.delivery_ratio(payload), 1.0);
    // Duplicate suppression: nobody logged the payload twice.
    for (_, a) in net.actors() {
        let actor = net.sim.actor(*a).unwrap();
        let copies = actor
            .received_log
            .iter()
            .filter(|(p, _)| *p == payload)
            .count();
        assert!(copies <= 1, "member received payload {copies} times");
    }
}

#[test]
fn lookup_done_resolves_fingers_via_messages() {
    // Drive a DhtActor directly: its fix-finger lookups must converge to
    // the oracle owners once the network answers.
    let m = members(24);
    let mut net = DynamicNetwork::converged(SPACE, &m, MiniRing, 6, wan());
    net.sim.run_until(net.sim.now() + Duration::from_secs(45));
    // After many fix-finger rounds, resolved fingers match the oracle.
    let sorted: Vec<Id> = m.iter().map(|mm| mm.id).collect();
    let owner_of = |k: Id| -> Id {
        let i = sorted.partition_point(|&x| x < k);
        sorted[if i == sorted.len() { 0 } else { i }]
    };
    for (member, actor) in net.actors() {
        let a = net.sim.actor(*actor).unwrap();
        for target in MiniRing.neighbor_targets(SPACE, member) {
            let resolved = a
                .neighbor_members()
                .iter()
                .map(|nb| nb.id)
                .min_by_key(|&nb| SPACE.seg_len(target, nb))
                .unwrap();
            // The resolved member nearest the target must be its owner.
            assert_eq!(
                resolved,
                owner_of(target),
                "member {} target {target}",
                member.id
            );
        }
    }
}

#[test]
fn remove_member_and_reject_duplicate_join() {
    let m = members(12);
    let mut net = DynamicNetwork::converged(SPACE, &m, MiniRing, 7, wan());
    assert!(net.remove_member(m[3].id));
    assert!(!net.remove_member(m[3].id), "second removal is a no-op");
    assert!(!net.remove_member(Id(1)), "unknown id is a no-op");
    assert!(
        net.inject_join(m[4], MiniRing).is_none(),
        "existing identifier rejected"
    );
    let fresh = Member::with_capacity(Id(1), 6);
    assert!(net.inject_join(fresh, MiniRing).is_some());
    net.sim.run_until(net.sim.now() + Duration::from_secs(30));
    let joined = net.actor_of(Id(1)).unwrap();
    assert!(net.sim.actor(joined).unwrap().is_joined());
}

#[test]
fn seeded_actor_state_accessors() {
    let mut sim: Simulation<DhtActor<MiniRing>> = Simulation::new(8, wan());
    let me = Member::with_capacity(Id(100), 6);
    let succ = Member::with_capacity(Id(200), 6);
    let pred = Member::with_capacity(Id(50), 6);
    let mut actor = DhtActor::new(SPACE, me, MiniRing);
    assert!(!actor.is_joined());
    assert!(actor.successor().is_none());
    actor.seed_state(vec![succ], pred, vec![(Id(300), succ)]);
    actor.set_directory(HashMap::new());
    assert!(actor.is_joined());
    assert_eq!(actor.successor().unwrap().id, Id(200));
    assert_eq!(actor.predecessor().unwrap().id, Id(50));
    assert_eq!(actor.neighbor_members().len(), 1);
    assert_eq!(actor.payloads_received(), 0);
    assert_eq!(actor.payload_hops(1), None);
    let id = sim.add_actor(actor);
    // A multicast payload delivered directly is recorded once.
    sim.post(
        id,
        id,
        DhtMsg::Multicast {
            payload: 42,
            region: None,
            hops: 3,
            data: bytes::Bytes::from_static(b"hello group"),
        },
    );
    sim.run_to_completion();
    let a = sim.actor(id).unwrap();
    assert_eq!(a.payload_hops(42), Some(3));
    assert_eq!(a.payloads_received(), 1);
    assert_eq!(a.payload_data(42).unwrap().as_ref(), b"hello group");
    assert!(a.payload_data(99).is_none());
}
