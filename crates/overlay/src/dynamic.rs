//! Dynamic-membership DHT nodes on the discrete-event simulator.
//!
//! The static overlays answer the paper's performance questions at
//! 100,000-node scale; this module answers the *resilience* questions: what
//! happens while members join, leave, and crash. A [`DhtActor`] is a live
//! node holding its own routing state, kept fresh by Chord-style periodic
//! stabilization (the paper reuses Chord's maintenance protocols for all
//! four systems, §3.3/§4.2). Protocols plug in through [`DhtProtocol`],
//! which supplies the two protocol-specific ingredients:
//!
//! * which *identifier targets* a node of a given capacity tracks as
//!   neighbors, and
//! * the greedy next-hop choice given the node's current neighbor table.
//!
//! Multicast over the live overlay is CAM-Koorde-style constrained flooding
//! (forward to all resolved neighbors, duplicate-suppressed) or CAM-Chord
//! region splitting, chosen by the protocol's
//! [`DhtProtocol::multicast_children`] implementation.

use std::collections::HashMap;

use cam_ring::{Id, IdSpace, Segment};
use cam_sim::engine::{Actor, ActorId, Context};
use cam_sim::rng::SimRng;
use cam_sim::time::Duration;
use cam_sim::{LatencyModel, Simulation};
use cam_trace::{DeliveryCensus, EventKind, GroupDeliveryCensus, Tracer};

use crate::adversary::{AdversaryState, ByzantineBehavior, DetectionCounters};
use crate::Member;

/// Number of successors each node tracks for ring resilience. Chord
/// recommends O(log n); 8 keeps the probability of a full-list wipeout
/// negligible up to ~30% simultaneous crashes (0.3^8 ≈ 7·10⁻⁵).
pub const SUCCESSOR_LIST_LEN: usize = 8;

/// Host-environment services a [`DhtActor`] needs to run.
///
/// The actor's protocol logic is host-agnostic: it reacts to messages and
/// timers and emits sends and timer requests through this trait. Two hosts
/// exist today — the discrete-event simulator ([`Context`] implements the
/// trait directly, so in-sim behaviour is unchanged) and `cam-net`'s
/// `NodeRuntime`, which carries the same actor over real transports
/// (loopback UDP, or an in-memory wire with injected loss). Anything that
/// can deliver [`DhtMsg`]s, fire timers, and supply a little randomness can
/// host a DHT node.
pub trait DhtDriver {
    /// The hosted actor's own address.
    fn me(&self) -> ActorId;

    /// Queues `msg` for delivery to `to`. Delivery is best-effort and
    /// asynchronous; the host decides latency and loss.
    fn send(&mut self, to: ActorId, msg: DhtMsg);

    /// Arms a one-shot timer that calls back into the actor with `tag`
    /// after `delay`.
    fn set_timer(&mut self, delay: Duration, tag: u64);

    /// Uniform random index in `[0, len)` for protocol decisions (e.g.
    /// picking an anti-entropy gossip partner). `len` must be non-zero.
    fn random_index(&mut self, len: usize) -> usize;

    /// True when the host's tracer is actually recording — lets the actor
    /// skip assembling events that would be thrown away. Default: `false`.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Records a structured trace event, stamped by the host with its own
    /// clock (virtual sim time, or the runtime's wire clock) and this
    /// actor's id. Default: no-op, so hosts without telemetry pay one
    /// predictable branch per hook site and nothing else.
    fn trace(&mut self, kind: EventKind) {
        let _ = kind;
    }
}

impl DhtDriver for Context<'_, DhtMsg> {
    fn me(&self) -> ActorId {
        Context::me(self)
    }

    fn send(&mut self, to: ActorId, msg: DhtMsg) {
        Context::send(self, to, msg)
    }

    fn set_timer(&mut self, delay: Duration, tag: u64) {
        Context::set_timer(self, delay, tag)
    }

    fn random_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "random_index over an empty range");
        self.rng().uniform_incl(0, len as u64 - 1) as usize
    }

    fn trace_enabled(&self) -> bool {
        Context::trace_enabled(self)
    }

    fn trace(&mut self, kind: EventKind) {
        Context::trace(self, kind)
    }
}

/// Buffered actor effects: the sends and timer requests one
/// [`DhtActor::deliver`] / [`DhtActor::deliver_timer`] call produced,
/// collected for a host that separates *running the actor* from
/// *performing the I/O*. This is the heart of the sans-I/O contract:
/// cam-net's reactor core drives actors through an [`EffectDriver`]
/// writing here, then turns the buffered effects into wire frames and
/// timer-heap entries afterwards, outside the actor borrow.
#[derive(Debug, Default)]
pub struct CollectedEffects {
    /// Outgoing `(destination, message)` pairs, in emission order. Hosts
    /// must preserve this order when shipping — deterministic transports
    /// assign delivery sequence numbers from it.
    pub sends: Vec<(ActorId, DhtMsg)>,
    /// One-shot timer requests as `(delay, tag)`, in emission order.
    pub timers: Vec<(Duration, u64)>,
}

impl CollectedEffects {
    /// An empty effect buffer.
    pub fn new() -> Self {
        CollectedEffects::default()
    }

    /// Whether no effects are buffered.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty()
    }

    /// Drops all buffered effects (capacity is kept for reuse).
    pub fn clear(&mut self) {
        self.sends.clear();
        self.timers.clear();
    }
}

/// A [`DhtDriver`] that buffers effects into [`CollectedEffects`] instead
/// of performing them — the bridge between the pure actor and a poll-style
/// host. The host lends the actor's RNG stream and its tracer for the
/// duration of one delivery; trace events are stamped with `now_micros`
/// (the host's clock, pre-read so the driver itself never touches a
/// clock).
pub struct EffectDriver<'a> {
    /// The hosted actor's own address.
    pub me: ActorId,
    /// Where emitted sends and timers land.
    pub effects: &'a mut CollectedEffects,
    /// The actor's private RNG stream.
    pub rng: &'a mut SimRng,
    /// The host's tracer (protocol events carry the host clock).
    pub tracer: &'a mut dyn Tracer,
    /// Host clock at delivery, in microseconds.
    pub now_micros: u64,
}

impl DhtDriver for EffectDriver<'_> {
    fn me(&self) -> ActorId {
        self.me
    }

    fn send(&mut self, to: ActorId, msg: DhtMsg) {
        self.effects.sends.push((to, msg));
    }

    fn set_timer(&mut self, delay: Duration, tag: u64) {
        self.effects.timers.push((delay, tag));
    }

    fn random_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "random_index over an empty range");
        self.rng.uniform_incl(0, len as u64 - 1) as usize
    }

    fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    fn trace(&mut self, kind: EventKind) {
        self.tracer
            .record(self.now_micros, self.me.index() as u64, kind);
    }
}

/// Protocol-specific logic plugged into [`DhtActor`].
pub trait DhtProtocol: Clone {
    /// Identifier targets this node should resolve and keep resolved as
    /// neighbors (fingers). Excludes the successor list, which the actor
    /// maintains unconditionally.
    fn neighbor_targets(&self, space: IdSpace, me: &Member) -> Vec<Id>;

    /// Routing state carried inside a lookup request (opaque to the
    /// actor): CAM-Koorde packs the number of key bits its de Bruijn chain
    /// has absorbed; CAM-Chord needs none. Called by the request initiator.
    fn initial_state(&self, space: IdSpace, me: &Member, key: Id) -> u64 {
        let _ = (space, me, key);
        0
    }

    /// Given the resolved neighbor table, the next hop for a lookup of
    /// `key`, or `None` if this node believes its immediate successor owns
    /// `key`. `state` is the request's routing state (see
    /// [`DhtProtocol::initial_state`]); implementations may update it.
    #[allow(clippy::too_many_arguments)]
    fn next_hop(
        &self,
        space: IdSpace,
        me: &Member,
        neighbors: &[Member],
        successor: &Member,
        predecessor: Option<&Member>,
        key: Id,
        state: &mut u64,
    ) -> Option<Id>;

    /// Members this node forwards a multicast covering `region` to, paired
    /// with the sub-region each child becomes responsible for (`None` for
    /// flooding protocols, which rely on duplicate suppression instead of
    /// region splitting).
    fn multicast_children(
        &self,
        space: IdSpace,
        me: &Member,
        neighbors: &[Member],
        successor: &Member,
        region: Option<Segment>,
    ) -> Vec<(Id, Option<Segment>)>;
}

/// Wire messages exchanged by [`DhtActor`]s.
///
/// `PartialEq` exists so `cam-net`'s codec can assert
/// `decode(encode(m)) == m` in its round-trip tests.
#[derive(Debug, Clone, PartialEq)]
pub enum DhtMsg {
    /// Route a lookup for `key`; reply to `reply_to` with `LookupDone`.
    Lookup {
        /// Key being resolved.
        key: Id,
        /// Request correlation id.
        req_id: u64,
        /// Actor that receives the answer.
        reply_to: ActorId,
        /// Hops taken so far.
        hops: u32,
        /// Protocol routing state (see [`DhtProtocol::initial_state`]).
        state: u64,
    },
    /// Answer to `Lookup`.
    LookupDone {
        /// Request correlation id.
        req_id: u64,
        /// The member believed responsible for the key.
        owner: Member,
        /// Total overlay hops the request traveled.
        hops: u32,
        /// The request hit its TTL and this answer is a best-effort guess;
        /// it must not be installed into routing tables.
        gave_up: bool,
    },
    /// "Who is your predecessor and successor list?" (stabilization).
    StabilizeQuery,
    /// Answer to `StabilizeQuery`.
    StabilizeReply {
        /// The replier's current predecessor, if known.
        predecessor: Option<Member>,
        /// The replier's successor list.
        successors: Vec<Member>,
    },
    /// "I believe I am your predecessor" (Chord's `notify`).
    Notify(Member),
    /// Liveness probe for a finger/neighbor.
    Ping {
        /// Correlation id.
        req_id: u64,
    },
    /// Liveness answer.
    Pong {
        /// Correlation id.
        req_id: u64,
        /// The responder's descriptor (refreshes stale capacity info).
        member: Member,
    },
    /// A multicast message: `(payload id, region this node must cover,
    /// application bytes)`. As in the paper (§4.3), duplicate suppression
    /// keys on the message header (the payload id) — the body rides along
    /// untouched and is handed to the application on first receipt.
    Multicast {
        /// Identifies the multicast session (for duplicate suppression).
        payload: u64,
        /// Region to cover (region-splitting protocols) or `None`
        /// (flooding).
        region: Option<Segment>,
        /// Hop count from the source.
        hops: u32,
        /// Application payload (cheaply reference-counted).
        data: bytes::Bytes,
    },
    /// Anti-entropy: "these are the multicast payloads I have" (sent
    /// periodically to the successor and a random finger when enabled).
    AntiEntropyDigest {
        /// Payload ids the sender has received.
        have: Vec<u64>,
    },
    /// Anti-entropy: "send me these payloads I am missing".
    PayloadPullReq {
        /// Payload ids requested.
        want: Vec<u64>,
    },
    /// Anti-entropy: one recovered payload (recorded locally, not
    /// re-flooded — the epidemic spreads through subsequent digests).
    PayloadPush {
        /// Payload id.
        payload: u64,
        /// Hop count to attribute (the recoverer's + 1).
        hops: u32,
        /// Application bytes.
        data: bytes::Bytes,
    },
    /// Ask a bootstrap node to find the joiner's successor.
    JoinRequest {
        /// The joining member.
        joiner: Member,
        /// Actor id of the joiner.
        joiner_actor: ActorId,
    },
    /// Tell the joiner its successor list (head = immediate successor;
    /// the rest seeds resilience so the joiner survives its successor
    /// crashing before the first stabilization round).
    JoinAnswer {
        /// The joiner's future successor list.
        successors: Vec<Member>,
    },
    /// Subscribe `member` to pub/sub group `group`. Injected self-addressed
    /// at the subscriber (which flips its local subscription flag), then
    /// routed greedily clockwise to the group's rendezvous root — the owner
    /// of `group_root_id(group)` — which records the membership.
    GroupSubscribe {
        /// Group being subscribed to.
        group: u64,
        /// Ring identifier of the subscribing member.
        member: u64,
    },
    /// Remove `member` from group `group`; routed like
    /// [`DhtMsg::GroupSubscribe`].
    GroupUnsubscribe {
        /// Group being left.
        group: u64,
        /// Ring identifier of the departing member.
        member: u64,
    },
    /// A pub/sub publish for one group. Forwarded exactly like
    /// [`DhtMsg::Multicast`] — the per-group tree is *implicit*, sharing the
    /// one ring and neighbor table — but only subscribers of `group` deliver
    /// the payload to the application.
    GroupPublish {
        /// The group this payload belongs to.
        group: u64,
        /// Identifies the publish (for duplicate suppression).
        payload: u64,
        /// Region to cover (region-splitting protocols) or `None`
        /// (flooding).
        region: Option<Segment>,
        /// Hop count from the source.
        hops: u32,
        /// Application payload.
        data: bytes::Bytes,
    },
}

/// The rendezvous-root identifier for pub/sub group `group`: a
/// deterministic hash of the group id mapped into the ring's identifier
/// space. The owner of this identifier is the group's root — the node that
/// tracks the group's membership.
///
/// The mix is SplitMix64's finalizer, so consecutive group ids scatter
/// uniformly instead of clustering on one arc of the ring.
pub fn group_root_id(space: IdSpace, group: u64) -> Id {
    let mut z = group.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Id(z & space.mask())
}

/// Per-node state and behaviour of a live DHT participant.
#[derive(Debug, Clone)]
pub struct DhtActor<P: DhtProtocol> {
    space: IdSpace,
    me: Member,
    protocol: P,
    /// Resolved routing entries: target identifier → member currently
    /// believed responsible for it.
    fingers: HashMap<u64, Member>,
    /// Identifier targets (cached from the protocol).
    targets: Vec<Id>,
    successors: Vec<Member>,
    predecessor: Option<Member>,
    /// Multicast payloads already seen (duplicate suppression).
    seen_payloads: HashMap<u64, u32>,
    /// Application bytes delivered per payload (first copy wins).
    delivered_data: HashMap<u64, bytes::Bytes>,
    /// Directory mapping member ids to actor ids (set by the harness; in a
    /// deployment this is the address book piggybacked on every message).
    /// Shared (`Arc`) across all actors of a network: at colossal scale a
    /// per-actor copy would be `O(n²)` memory, which is exactly what the
    /// 100k-node chaos preset must avoid. Copy-on-write on the rare
    /// per-actor mutation.
    directory: std::sync::Arc<HashMap<u64, ActorId>>,
    /// Outstanding lookup requests this node initiated: req_id → purpose.
    pending: HashMap<u64, PendingLookup>,
    /// Liveness probes in flight: req_id → (finger target, probed member).
    pending_pings: HashMap<u64, (u64, Id)>,
    /// Consecutive failed probes per member id — pruning requires two
    /// strikes so a single lost Ping/Pong (message loss, not death) does
    /// not evict a live finger.
    ping_strikes: HashMap<u64, u8>,
    /// Outstanding predecessor liveness probe (Chord's check_predecessor):
    /// `(req_id, probed predecessor)`.
    pending_pred_ping: Option<(u64, Id)>,
    /// Consecutive unanswered predecessor probes.
    pred_strikes: u8,
    /// Round-robin cursor over `targets` for probing/refreshing fingers
    /// (advances by exactly the number of slots visited per round, so
    /// every slot is reached regardless of request-id arithmetic).
    fix_cursor: usize,
    /// True while a StabilizeQuery to the current successor is unanswered;
    /// still set at the next stabilize tick ⇒ one strike (two consecutive
    /// strikes, not a single lost message, declare the successor dead).
    awaiting_stabilize: bool,
    /// Consecutive unanswered stabilize queries to the current successor.
    stabilize_strikes: u8,
    next_req_id: u64,
    joined: bool,
    stabilize_every: Duration,
    /// Whether this node takes part in anti-entropy payload repair
    /// (pbcast-style pull gossip; see `set_anti_entropy`).
    anti_entropy: bool,
    /// Pub/sub groups this node is subscribed to (ordered: iteration
    /// feeds deterministic censuses).
    subscriptions: std::collections::BTreeSet<u64>,
    /// Rendezvous-root state: for each group whose root identifier this
    /// node owns, the ring identifiers of its subscribers.
    group_members: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>>,
    /// Which pub/sub group each seen payload belongs to (group publishes
    /// only) — keeps group traffic out of the ungrouped anti-entropy
    /// digests and attributes censuses.
    group_of: HashMap<u64, u64>,
    /// Statistics: multicast payloads received (payload, hops).
    pub received_log: Vec<(u64, u32)>,
    /// Statistics: group publishes delivered to this subscriber
    /// `(group, payload, hops)`.
    pub group_received_log: Vec<(u64, u64, u32)>,
    /// Byzantine adversary state attached by the chaos harness; `None`
    /// on honest nodes. Boxed so honest actors stay small.
    adversary: Option<Box<AdversaryState>>,
    /// Honest-defense detection counters (region violations, capacity
    /// forgeries, replay suspects, stale claims, repair recoveries).
    detections: DetectionCounters,
    /// First-observed capacity per member id. Capacity is immutable in
    /// this protocol, so any later claim that disagrees is a forgery;
    /// the pinned value wins so forged `c_x` cannot steer region splits.
    capacity_pins: HashMap<u64, u32>,
    /// Members this node has itself confirmed dead — evicted *and* then
    /// unresponsive through a full morgue investigation — mapped to the
    /// stabilize rounds the verdict has left to live. A stabilize reply
    /// re-advertising one is a stale incarnation claim; cleared when the
    /// member provably speaks again (Pong, Notify, or a fresh
    /// JoinRequest) — or when the verdict expires. Expiry bounds the
    /// damage of the rare *false* verdict: a genuinely dead member keeps
    /// failing probes and is re-confirmed, so the stale-claim detector
    /// keeps firing, while a falsely-accused live node becomes adoptable
    /// again instead of being blacklisted out of the ring forever.
    confirmed_dead: std::collections::BTreeMap<u64, u8>,
    /// First sender observed per region-carrying payload: a duplicate
    /// arriving later from a *different* sender is replay evidence
    /// (retransmits and wire duplicates re-arrive from the original).
    first_sender: HashMap<u64, ActorId>,
    /// Outstanding deep successor-list probe `(req_id, probed id)`.
    pending_succ_ping: Option<(u64, Id)>,
    /// Consecutive unanswered deep successor-list probes per member id.
    succ_strikes: HashMap<u64, u8>,
    /// Round-robin cursor over non-head successor-list entries.
    succ_probe_cursor: usize,
    /// Evicted members under post-mortem investigation, mapped to the
    /// consecutive unanswered investigation probes so far. Eviction alone
    /// is cheap, self-healing ring repair and must stay trigger-happy;
    /// the confirmed-dead *verdict* (which rejects re-advertisements) is
    /// issued only after [`DEAD_VERDICT_STRIKES`] consecutive unanswered
    /// probes here — strong enough evidence that a lossy-but-live member
    /// is very unlikely to be condemned.
    morgue: std::collections::BTreeMap<u64, u8>,
    /// Morgue entries whose investigation probe from the previous
    /// stabilize round is still unanswered.
    morgue_awaiting: std::collections::BTreeSet<u64>,
}

#[derive(Debug, Clone)]
enum PendingLookup {
    /// Refreshing the finger for this target identifier.
    FixFinger(Id),
}

/// Timer tags.
const TIMER_STABILIZE: u64 = 1;
const TIMER_FIX_FINGERS: u64 = 2;
const TIMER_ANTI_ENTROPY: u64 = 3;

/// Stabilize rounds a confirmed-dead verdict stays in force before it
/// lapses. Deliberately a round count, not wall time (determinism), and
/// long enough that a genuinely dead node is re-probed and re-confirmed
/// well before expiry, short enough that a live node falsely condemned by
/// a run of dropped probes becomes adoptable again within a few seconds.
const DEAD_VERDICT_ROUNDS: u8 = 8;

/// Consecutive unanswered investigation probes (one per stabilize round)
/// required to turn an eviction into a confirmed-dead verdict. Eviction
/// itself stays at the cheap two-strike threshold — it is self-healing —
/// but the verdict gates the stale-claim defense, so it demands evidence
/// a lossy wire almost never fabricates: at 12% frame loss a live member
/// fails four consecutive round-trips with probability ~0.3%.
const DEAD_VERDICT_STRIKES: u8 = 4;

/// Upper bound on simultaneous morgue investigations (deterministic cap;
/// overflow evictions simply go uninvestigated until a slot frees up).
const MORGUE_CAP: usize = 16;

impl<P: DhtProtocol> DhtActor<P> {
    /// Creates a node that already knows its place on the ring (used to
    /// bootstrap an initial stable network).
    pub fn new(space: IdSpace, me: Member, protocol: P) -> Self {
        let targets = protocol.neighbor_targets(space, &me);
        DhtActor {
            space,
            me,
            protocol,
            fingers: HashMap::new(),
            targets,
            successors: Vec::new(),
            predecessor: None,
            seen_payloads: HashMap::new(),
            delivered_data: HashMap::new(),
            directory: std::sync::Arc::new(HashMap::new()),
            pending: HashMap::new(),
            pending_pings: HashMap::new(),
            ping_strikes: HashMap::new(),
            pending_pred_ping: None,
            pred_strikes: 0,
            fix_cursor: 0,
            awaiting_stabilize: false,
            stabilize_strikes: 0,
            next_req_id: 1,
            joined: false,
            stabilize_every: Duration::from_millis(500),
            anti_entropy: false,
            subscriptions: std::collections::BTreeSet::new(),
            group_members: std::collections::BTreeMap::new(),
            group_of: HashMap::new(),
            received_log: Vec::new(),
            group_received_log: Vec::new(),
            adversary: None,
            detections: DetectionCounters::default(),
            capacity_pins: HashMap::from([(me.id.value(), me.capacity)]),
            confirmed_dead: std::collections::BTreeMap::new(),
            first_sender: HashMap::new(),
            pending_succ_ping: None,
            succ_strikes: HashMap::new(),
            succ_probe_cursor: 0,
            morgue: std::collections::BTreeMap::new(),
            morgue_awaiting: std::collections::BTreeSet::new(),
        }
    }

    /// Attaches a Byzantine adversary (chaos harness only): from now on
    /// this node performs `behavior`, with every decision drawn from a
    /// private RNG stream seeded by `seed` — never from the host's
    /// ambient randomness — so replays are bit-identical.
    pub fn attach_adversary(&mut self, behavior: ByzantineBehavior, seed: u64) {
        self.adversary = Some(Box::new(AdversaryState::new(behavior, seed)));
    }

    /// This node's honest-defense detection counters.
    pub fn detections(&self) -> DetectionCounters {
        self.detections
    }

    /// The attached adversary state, if any (diagnostics / harness).
    pub fn adversary(&self) -> Option<&AdversaryState> {
        self.adversary.as_deref()
    }

    /// The member descriptor of this node.
    pub fn member(&self) -> &Member {
        &self.me
    }

    /// This node's current successor, if it has one.
    pub fn successor(&self) -> Option<&Member> {
        self.successors.first()
    }

    /// This node's current predecessor, if known.
    pub fn predecessor(&self) -> Option<&Member> {
        self.predecessor.as_ref()
    }

    /// Raw resolved finger entries `(target identifier, member)` — for
    /// diagnostics and tests.
    pub fn finger_entries(&self) -> Vec<(u64, Member)> {
        let mut v: Vec<(u64, Member)> = self.fingers.iter().map(|(&t, &m)| (t, m)).collect();
        v.sort_by_key(|&(t, _)| t);
        v
    }

    /// Current resolved neighbor members (deduplicated), in finger-target
    /// order. The order is deterministic — hash-map iteration order must
    /// not leak into protocol behavior, or equal seeds stop producing
    /// equal runs.
    pub fn neighbor_members(&self) -> Vec<Member> {
        let entries = self.finger_entries();
        let mut out: Vec<Member> = Vec::with_capacity(entries.len());
        for (_, m) in entries {
            if m.id != self.me.id && !out.iter().any(|o| o.id == m.id) {
                out.push(m);
            }
        }
        out
    }

    /// Seeds ring pointers and fingers directly (harness bootstrap).
    pub fn seed_state(
        &mut self,
        successors: Vec<Member>,
        predecessor: Member,
        finger_seeds: Vec<(Id, Member)>,
    ) {
        // Bootstrap knowledge is ground truth: pin every neighbor's
        // capacity so later forged `c_x` claims are detectable.
        for m in &successors {
            self.capacity_pins.insert(m.id.value(), m.capacity);
        }
        self.capacity_pins
            .insert(predecessor.id.value(), predecessor.capacity);
        self.successors = successors;
        self.predecessor = Some(predecessor);
        for (t, m) in finger_seeds {
            self.capacity_pins.insert(m.id.value(), m.capacity);
            self.fingers.insert(t.value(), m);
        }
        self.joined = true;
    }

    /// Installs the id → actor directory (harness responsibility).
    ///
    /// Accepts either an owned map or an [`Arc`](std::sync::Arc)-shared
    /// one; the harness shares a single allocation across the whole
    /// network so that directories cost `O(n)` total, not `O(n²)`.
    pub fn set_directory(
        &mut self,
        directory: impl Into<std::sync::Arc<HashMap<u64, ActorId>>>,
    ) {
        self.directory = directory.into();
    }

    /// Adds one directory entry (e.g. for a recently joined node).
    ///
    /// Copy-on-write: if the directory is currently shared with other
    /// actors, this actor gets a private copy first. Harness-wide updates
    /// should instead rebuild once and re-share via
    /// [`set_directory`](Self::set_directory).
    pub fn add_directory_entry(&mut self, id: Id, actor: ActorId) {
        std::sync::Arc::make_mut(&mut self.directory).insert(id.value(), actor);
    }

    /// How many multicast payloads this node has received.
    pub fn payloads_received(&self) -> usize {
        self.seen_payloads.len()
    }

    /// Hop count at which `payload` arrived, if it did.
    pub fn payload_hops(&self, payload: u64) -> Option<u32> {
        self.seen_payloads.get(&payload).copied()
    }

    /// The application bytes delivered for `payload`, if it arrived.
    pub fn payload_data(&self, payload: u64) -> Option<&bytes::Bytes> {
        self.delivered_data.get(&payload)
    }

    /// Whether this node is subscribed to pub/sub group `group`.
    pub fn is_subscribed(&self, group: u64) -> bool {
        self.subscriptions.contains(&group)
    }

    /// Groups this node subscribes to, ascending.
    pub fn subscribed_groups(&self) -> Vec<u64> {
        self.subscriptions.iter().copied().collect()
    }

    /// Whether the group publish `(group, payload)` was delivered here
    /// (i.e. this node was a subscriber when the payload arrived).
    pub fn has_group_payload(&self, group: u64, payload: u64) -> bool {
        self.group_received_log
            .iter()
            .any(|&(g, p, _)| g == group && p == payload)
    }

    /// Rendezvous-root view: the subscriber identifiers recorded for
    /// `group` *at this node*. Non-empty only on the group's root.
    pub fn group_members_of(&self, group: u64) -> Vec<u64> {
        self.group_members
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Whether this node has completed its join.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Enables anti-entropy payload repair: the node periodically
    /// exchanges payload digests with its successor and one finger, and
    /// pulls anything it missed. This is the classic epidemic complement
    /// to best-effort multicast (pbcast): it converges delivery to 100%
    /// under message loss and tree breakage at the cost of periodic
    /// digest traffic.
    pub fn set_anti_entropy(&mut self, enabled: bool) {
        self.anti_entropy = enabled;
    }

    /// Sets the base maintenance period (stabilize interval; finger fixing
    /// and anti-entropy run at 2× this period). Real-transport hosts lower
    /// it so loopback clusters converge in wall-clock seconds; the sim
    /// default is 500 ms.
    pub fn set_stabilize_every(&mut self, every: Duration) {
        self.stabilize_every = every;
    }

    fn actor_of(&self, id: Id) -> Option<ActorId> {
        self.directory.get(&id.value()).copied()
    }

    fn send_to_member<D: DhtDriver>(&self, drv: &mut D, id: Id, msg: DhtMsg) {
        if let Some(actor) = self.actor_of(id) {
            drv.send(actor, msg);
        }
        // Unknown address: the message is lost, like a stale routing entry.
    }

    /// Arms the periodic maintenance timers; call once after inserting the
    /// actor into the simulation.
    pub fn start_maintenance(ctx_sim: &mut Simulation<Self>, actor: ActorId, jitter: u64) {
        let base = Duration::from_millis(500);
        ctx_sim.post_timer(
            actor,
            base + Duration::from_millis(jitter % 250),
            TIMER_STABILIZE,
        );
        ctx_sim.post_timer(
            actor,
            base.saturating_mul(2) + Duration::from_millis(jitter % 333),
            TIMER_FIX_FINGERS,
        );
        ctx_sim.post_timer(
            actor,
            base.saturating_mul(3) + Duration::from_millis(jitter % 451),
            TIMER_ANTI_ENTROPY,
        );
    }

    fn fresh_req_id(&mut self) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        id
    }

    /// Vets a member claim against the pinned capacity for its
    /// identifier. The first observation pins; a later claim that
    /// disagrees bumps `capacity_forgeries` and is *corrected* to the
    /// pinned value, so a forged `c_x` cannot steer this node's region
    /// partitioning. Capacity is immutable per member in this protocol
    /// (it survives crash/restart unchanged), so honest claims never
    /// conflict.
    fn vet<D: DhtDriver>(&mut self, ctx: &mut D, mut m: Member) -> Member {
        match self.capacity_pins.entry(m.id.value()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m.capacity);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != m.capacity {
                    self.detections.capacity_forgeries += 1;
                    ctx.trace(EventKind::AdversaryDetect {
                        detector: "capacity_forgery",
                        suspect: m.id.value(),
                        payload: 0,
                    });
                    m.capacity = *e.get();
                }
            }
        }
        m
    }

    /// The member descriptor this node advertises about itself. Honest
    /// nodes advertise the truth; a [`ByzantineBehavior::ForgeCapacity`]
    /// adversary inflates its capacity so peers' region partitions
    /// over-split around it.
    fn advertised_self<D: DhtDriver>(&mut self, ctx: &mut D) -> Member {
        if let Some(adv) = self.adversary.as_deref_mut() {
            if adv.behavior == ByzantineBehavior::ForgeCapacity {
                let mut m = self.me;
                m.capacity = m.capacity.saturating_mul(4).max(m.capacity + 4);
                adv.acts += 1;
                ctx.trace(EventKind::AdversaryAct {
                    behavior: "forge_capacity",
                    payload: 0,
                });
                return m;
            }
        }
        self.me
    }

    /// Builds this node's [`DhtMsg::StabilizeReply`] — the adversary
    /// hook point. A stale-incarnation adversary answers with a snapshot
    /// frozen at its first query; a replay adversary piggybacks one
    /// remembered multicast frame to an RNG-chosen peer (piggybacked on
    /// the stabilize cadence so no extra timers are armed — the cleanup
    /// oracle audits the timer census); a capacity forger inflates the
    /// advertised head entry.
    fn answer_stabilize<D: DhtDriver>(&mut self, ctx: &mut D) -> DhtMsg {
        let my_advert = self.advertised_self(ctx);
        let mut successors = Vec::with_capacity(SUCCESSOR_LIST_LEN);
        successors.push(my_advert);
        successors.extend(self.successors.iter().copied().take(SUCCESSOR_LIST_LEN - 1));
        let mut reply = (self.predecessor, successors);
        // Replay targets must be computed before borrowing the adversary
        // (`neighbor_members` re-borrows `self`).
        let replay_targets: Vec<Id> = if self
            .adversary
            .as_deref()
            .is_some_and(|a| a.behavior == ByzantineBehavior::Replay)
        {
            let mut t: Vec<Id> = self.successors.iter().map(|m| m.id).collect();
            for m in self.neighbor_members() {
                if !t.contains(&m.id) {
                    t.push(m.id);
                }
            }
            t
        } else {
            Vec::new()
        };
        let mut replayed: Option<(Id, u64, Option<Segment>, u32, bytes::Bytes)> = None;
        if let Some(adv) = self.adversary.as_deref_mut() {
            match adv.behavior {
                ByzantineBehavior::StaleIncarnation => {
                    let frozen = adv.frozen.get_or_insert_with(|| (reply.0, reply.1.clone()));
                    if *frozen != reply {
                        adv.acts += 1;
                        ctx.trace(EventKind::AdversaryAct {
                            behavior: "stale_incarnation",
                            payload: 0,
                        });
                    }
                    reply = frozen.clone();
                }
                ByzantineBehavior::Replay => {
                    if !adv.remembered.is_empty() && !replay_targets.is_empty() {
                        let f =
                            adv.rng.uniform_incl(0, adv.remembered.len() as u64 - 1) as usize;
                        let t =
                            adv.rng.uniform_incl(0, replay_targets.len() as u64 - 1) as usize;
                        let (payload, region, hops, data) = adv.remembered[f].clone();
                        replayed = Some((replay_targets[t], payload, region, hops, data));
                        adv.acts += 1;
                    }
                }
                _ => {}
            }
        }
        if let Some((to, payload, region, hops, data)) = replayed {
            // Deliberately NOT traced as a MulticastForward: the
            // forward-cycle oracle counts (actor, payload, child) edges,
            // and the adversary's re-send is an attack, not tree traffic.
            ctx.trace(EventKind::AdversaryAct {
                behavior: "replay",
                payload,
            });
            self.send_to_member(
                ctx,
                to,
                DhtMsg::Multicast {
                    payload,
                    region,
                    hops,
                    data,
                },
            );
        }
        DhtMsg::StabilizeReply {
            predecessor: reply.0,
            successors: reply.1,
        }
    }

    /// Marks `member` as provably alive: it just sent us something that
    /// only a live node originates. Closes any investigation and voids
    /// any standing verdict.
    fn mark_alive(&mut self, member: Id) {
        self.confirmed_dead.remove(&member.value());
        self.succ_strikes.remove(&member.value());
        self.morgue.remove(&member.value());
        self.morgue_awaiting.remove(&member.value());
    }

    /// Opens (or continues) a post-eviction investigation of `member`.
    /// The stabilize timer pings every morgue entry once per round; only
    /// [`DEAD_VERDICT_STRIKES`] consecutive unanswered probes produce the
    /// confirmed-dead verdict, which in turn carries a round budget
    /// ([`DEAD_VERDICT_ROUNDS`]) and lapses unless re-earned.
    fn open_investigation(&mut self, member: Id) {
        let id = member.value();
        if id == self.me.id.value() || self.confirmed_dead.contains_key(&id) {
            return;
        }
        if self.morgue.len() < MORGUE_CAP || self.morgue.contains_key(&id) {
            self.morgue.entry(id).or_insert(0);
        }
        self.succ_strikes.remove(&id);
    }

    fn handle_lookup<D: DhtDriver>(
        &mut self,
        ctx: &mut D,
        key: Id,
        req_id: u64,
        reply_to: ActorId,
        hops: u32,
        mut state: u64,
    ) {
        let answer = |ctx: &mut D, owner: Member, gave_up: bool| {
            ctx.send(
                reply_to,
                DhtMsg::LookupDone {
                    req_id,
                    owner,
                    hops,
                    gave_up,
                },
            );
        };
        // TTL: a lookup that has bounced this long is circling a damaged
        // overlay; answer best-effort so the requester can move on.
        if hops > 4 * self.space.bits() + 32 {
            let me = self.advertised_self(ctx);
            answer(ctx, me, true);
            return;
        }
        // Owner check: key in (me, successor] → successor owns it;
        // key in (predecessor, me] → I own it.
        if let Some(pred) = self.predecessor {
            if self.space.in_segment(key, pred.id, self.me.id) || key == self.me.id {
                let me = self.advertised_self(ctx);
                answer(ctx, me, false);
                return;
            }
        }
        let Some(succ) = self.successors.first().copied() else {
            // Isolated node: answer with self to terminate the request.
            let me = self.advertised_self(ctx);
            answer(ctx, me, true);
            return;
        };
        if self.space.in_segment(key, self.me.id, succ.id) {
            answer(ctx, succ, false);
            return;
        }
        let neighbors = self.neighbor_members();
        let next = self
            .protocol
            .next_hop(
                self.space,
                &self.me,
                &neighbors,
                &succ,
                self.predecessor.as_ref(),
                key,
                &mut state,
            )
            .unwrap_or(succ.id);
        // A stalled route falls back to the successor to keep progress.
        let next = if next == self.me.id { succ.id } else { next };
        self.send_to_member(
            ctx,
            next,
            DhtMsg::Lookup {
                key,
                req_id,
                reply_to,
                hops: hops + 1,
                state,
            },
        );
    }

    fn handle_multicast<D: DhtDriver>(
        &mut self,
        ctx: &mut D,
        from: ActorId,
        payload: u64,
        region: Option<Segment>,
        hops: u32,
        data: bytes::Bytes,
    ) {
        if self.seen_payloads.contains_key(&payload) {
            // Replay evidence: a region-carrying copy arriving again from
            // a *different* sender than the first. Retransmits and wire
            // duplicates re-arrive from the original sender, and the
            // region-split tree hands each payload to a child exactly
            // once, so a second region-carrying sender replayed the frame.
            if region.is_some()
                && self
                    .first_sender
                    .get(&payload)
                    .is_some_and(|&first| first != from)
            {
                self.detections.replay_suspects += 1;
                ctx.trace(EventKind::AdversaryDetect {
                    detector: "replay_suspect",
                    suspect: from.0 as u64,
                    payload,
                });
            }
            ctx.trace(EventKind::DuplicateSuppress {
                payload,
                hops,
                group: None,
            });
            return; // duplicate
        }
        ctx.trace(EventKind::MulticastReceive {
            payload,
            hops,
            group: None,
        });
        if region.is_some() {
            self.first_sender.insert(payload, from);
        }
        self.seen_payloads.insert(payload, hops);
        self.received_log.push((payload, hops));
        self.delivered_data.insert(payload, data.clone());
        // Region honesty: CAM-Chord's split always delegates to child `c`
        // a segment beginning (exclusively) at `c` itself, and a source's
        // self-addressed frame carries `all_but(me)`, which also begins
        // at `me` — so on every honest region-carrying frame,
        // `region.from == me`. A frame violating that was misrouted:
        // deliver locally (the bytes are real) but do NOT forward, since
        // splitting someone else's segment would spray the wrong subtree.
        // Anti-entropy repairs the starved region.
        if let Some(r) = region {
            if r.from != self.me.id {
                self.detections.region_violations += 1;
                ctx.trace(EventKind::AdversaryDetect {
                    detector: "region_violation",
                    suspect: from.0 as u64,
                    payload,
                });
                return;
            }
        }
        let Some(succ) = self.successors.first().copied() else {
            return;
        };
        let neighbors = self.neighbor_members();
        let mut children = self
            .protocol
            .multicast_children(self.space, &self.me, &neighbors, &succ, region);
        // Adversary hooks: all decisions draw from the adversary's own
        // plan-seeded RNG, never from `ctx.random_index`, so chaos
        // replays stay bit-identical.
        if let Some(adv) = self.adversary.as_deref_mut() {
            match adv.behavior {
                ByzantineBehavior::Replay => {
                    adv.remember(payload, region, hops, data.clone());
                }
                ByzantineBehavior::Misroute => {
                    let regions: Vec<Option<Segment>> =
                        children.iter().map(|&(_, r)| r).collect();
                    let n = children.len();
                    if n > 1 && regions.iter().any(Option::is_some) {
                        // Rotate the delegated sub-segments one child
                        // over: every child now gets a region starting at
                        // a *different* child's identifier.
                        for (i, (_, r)) in children.iter_mut().enumerate() {
                            *r = regions[(i + 1) % n];
                        }
                        adv.acts += 1;
                        ctx.trace(EventKind::AdversaryAct {
                            behavior: "misroute",
                            payload,
                        });
                    } else if n == 1 && region.is_some() {
                        // Single child: hand it the parent's whole region,
                        // which starts at *me*, not at the child.
                        children[0].1 = region;
                        adv.acts += 1;
                        ctx.trace(EventKind::AdversaryAct {
                            behavior: "misroute",
                            payload,
                        });
                    }
                }
                ByzantineBehavior::SelectiveDrop => {
                    let mut kept = Vec::with_capacity(children.len());
                    for c in children.drain(..) {
                        if adv.rng.uniform_incl(0, 99) < 45 {
                            adv.acts += 1;
                            ctx.trace(EventKind::AdversaryAct {
                                behavior: "selective_drop",
                                payload,
                            });
                        } else {
                            kept.push(c);
                        }
                    }
                    children = kept;
                }
                ByzantineBehavior::ForgeCapacity | ByzantineBehavior::StaleIncarnation => {}
            }
        }
        if ctx.trace_enabled() {
            let split = children.iter().filter(|(_, r)| r.is_some()).count();
            if split > 0 {
                ctx.trace(EventKind::RegionSplit {
                    payload,
                    children: split as u32,
                });
            }
        }
        for (child, child_region) in children {
            if ctx.trace_enabled() {
                ctx.trace(EventKind::MulticastForward {
                    payload,
                    to: child.value(),
                    hops: hops + 1,
                    segment: child_region.map(|s| (s.from.value(), s.to.value())),
                    group: None,
                });
            }
            self.send_to_member(
                ctx,
                child,
                DhtMsg::Multicast {
                    payload,
                    region: child_region,
                    hops: hops + 1,
                    data: data.clone(),
                },
            );
        }
    }

    /// Handles a pub/sub membership change ([`DhtMsg::GroupSubscribe`] /
    /// [`DhtMsg::GroupUnsubscribe`]).
    ///
    /// Three roles, all served by one message as it travels:
    /// * at the subscriber itself (`member == me`) the local subscription
    ///   flag flips — delivery filtering needs no root round-trip;
    /// * at the group's rendezvous root the membership set is updated;
    /// * anywhere else the message takes one greedy clockwise hop toward
    ///   the root (the same protocol-agnostic walk JoinRequest uses, for
    ///   the same reason: there is nowhere to carry per-protocol routing
    ///   state).
    fn handle_group_membership<D: DhtDriver>(
        &mut self,
        ctx: &mut D,
        group: u64,
        member: u64,
        subscribe: bool,
    ) {
        if member == self.me.id.value() {
            if subscribe {
                self.subscriptions.insert(group);
            } else {
                self.subscriptions.remove(&group);
            }
        }
        let key = group_root_id(self.space, group);
        let is_root = key == self.me.id
            || self
                .predecessor
                .as_ref()
                .is_some_and(|p| self.space.in_segment(key, p.id, self.me.id));
        if is_root {
            if subscribe {
                self.group_members.entry(group).or_default().insert(member);
            } else if let Some(set) = self.group_members.get_mut(&group) {
                set.remove(&member);
                if set.is_empty() {
                    self.group_members.remove(&group);
                }
            }
            return;
        }
        let forward = if subscribe {
            DhtMsg::GroupSubscribe { group, member }
        } else {
            DhtMsg::GroupUnsubscribe { group, member }
        };
        let Some(succ) = self.successors.first().copied() else {
            return; // isolated: membership is lost, like any best-effort send
        };
        if self.space.in_segment(key, self.me.id, succ.id) {
            self.send_to_member(ctx, succ.id, forward);
            return;
        }
        let neighbors = self.neighbor_members();
        let next = neighbors
            .iter()
            .chain(std::iter::once(&succ))
            .filter(|m| self.space.in_segment(m.id, self.me.id, key))
            .max_by_key(|m| self.space.seg_len(self.me.id, m.id))
            .map_or(succ.id, |m| m.id);
        let next = if next == self.me.id { succ.id } else { next };
        self.send_to_member(ctx, next, forward);
    }

    /// Handles [`DhtMsg::GroupPublish`] — structurally `handle_multicast`
    /// (same duplicate suppression, same region split over the shared
    /// neighbor table: the per-group tree is implicit), except that only
    /// subscribers deliver the payload to the application, and every trace
    /// event carries the group.
    fn handle_group_publish<D: DhtDriver>(
        &mut self,
        ctx: &mut D,
        from: ActorId,
        group: u64,
        payload: u64,
        region: Option<Segment>,
        hops: u32,
        data: bytes::Bytes,
    ) {
        use cam_trace::GroupId;
        if self.seen_payloads.contains_key(&payload) {
            if region.is_some()
                && self
                    .first_sender
                    .get(&payload)
                    .is_some_and(|&first| first != from)
            {
                self.detections.replay_suspects += 1;
                ctx.trace(EventKind::AdversaryDetect {
                    detector: "replay_suspect",
                    suspect: from.0 as u64,
                    payload,
                });
            }
            ctx.trace(EventKind::DuplicateSuppress {
                payload,
                hops,
                group: Some(GroupId(group)),
            });
            return; // duplicate
        }
        if region.is_some() {
            self.first_sender.insert(payload, from);
        }
        self.seen_payloads.insert(payload, hops);
        self.group_of.insert(payload, group);
        if self.subscriptions.contains(&group) {
            ctx.trace(EventKind::MulticastReceive {
                payload,
                hops,
                group: Some(GroupId(group)),
            });
            self.group_received_log.push((group, payload, hops));
            self.delivered_data.insert(payload, data.clone());
        }
        // Same region-honesty containment as `handle_multicast`.
        if let Some(r) = region {
            if r.from != self.me.id {
                self.detections.region_violations += 1;
                ctx.trace(EventKind::AdversaryDetect {
                    detector: "region_violation",
                    suspect: from.0 as u64,
                    payload,
                });
                return;
            }
        }
        let Some(succ) = self.successors.first().copied() else {
            return;
        };
        let neighbors = self.neighbor_members();
        let children = self
            .protocol
            .multicast_children(self.space, &self.me, &neighbors, &succ, region);
        if ctx.trace_enabled() {
            let split = children.iter().filter(|(_, r)| r.is_some()).count();
            if split > 0 {
                ctx.trace(EventKind::RegionSplit {
                    payload,
                    children: split as u32,
                });
            }
        }
        for (child, child_region) in children {
            if ctx.trace_enabled() {
                ctx.trace(EventKind::MulticastForward {
                    payload,
                    to: child.value(),
                    hops: hops + 1,
                    segment: child_region.map(|s| (s.from.value(), s.to.value())),
                    group: Some(GroupId(group)),
                });
            }
            self.send_to_member(
                ctx,
                child,
                DhtMsg::GroupPublish {
                    group,
                    payload,
                    region: child_region,
                    hops: hops + 1,
                    data: data.clone(),
                },
            );
        }
    }

    fn handle_anti_entropy_timer<D: DhtDriver>(&mut self, ctx: &mut D) {
        if self.anti_entropy {
            // Sorted so the digest is identical across runs (hash order
            // would otherwise perturb downstream message ordering). Group
            // publishes are excluded: epidemic repair through non-subscriber
            // relays would deliver them without their group attribution.
            let mut have: Vec<u64> = self
                .seen_payloads
                .keys()
                .filter(|p| !self.group_of.contains_key(p))
                .copied()
                .collect();
            have.sort_unstable();
            let mut targets: Vec<Id> = Vec::new();
            if let Some(succ) = self.successors.first() {
                targets.push(succ.id);
            }
            let neighbors = self.neighbor_members();
            if !neighbors.is_empty() {
                let pick = ctx.random_index(neighbors.len());
                targets.push(neighbors[pick].id);
            }
            for t in targets {
                self.send_to_member(ctx, t, DhtMsg::AntiEntropyDigest { have: have.clone() });
            }
        }
        // Always re-arm so enabling anti-entropy later takes effect.
        ctx.set_timer(self.stabilize_every.saturating_mul(2), TIMER_ANTI_ENTROPY);
    }

    fn handle_stabilize_timer<D: DhtDriver>(&mut self, ctx: &mut D) {
        // Age out confirmed-dead verdicts: each round spends one unit of
        // a verdict's budget, and a verdict that is never re-earned (the
        // "dead" node was a false positive from probe loss) expires
        // instead of blacklisting a live node out of the ring forever.
        self.confirmed_dead.retain(|_, rounds| {
            *rounds -= 1;
            *rounds > 0
        });
        // Morgue investigations: probes launched last round that are
        // still unanswered count one strike; enough consecutive strikes
        // (see `DEAD_VERDICT_STRIKES`) convert the eviction into a
        // confirmed-dead verdict. A Pong in between closed the case via
        // `mark_alive`.
        for id in std::mem::take(&mut self.morgue_awaiting) {
            if let Some(strikes) = self.morgue.get_mut(&id) {
                *strikes += 1;
                if *strikes >= DEAD_VERDICT_STRIKES {
                    self.morgue.remove(&id);
                    self.confirmed_dead.insert(id, DEAD_VERDICT_ROUNDS);
                }
            }
        }
        // Every open case gets one probe per round (BTreeMap order keeps
        // the probe sequence deterministic).
        let open: Vec<u64> = self.morgue.keys().copied().collect();
        for id in open {
            let req_id = self.fresh_req_id();
            self.morgue_awaiting.insert(id);
            self.send_to_member(ctx, Id(id), DhtMsg::Ping { req_id });
        }
        // Failure detection: the query sent at the previous tick went
        // unanswered — strike; two consecutive strikes declare the
        // successor dead and promote the next one (a single strike may be
        // plain message loss).
        if self.awaiting_stabilize {
            self.stabilize_strikes += 1;
            if self.stabilize_strikes >= 2 && self.successors.len() > 1 {
                let dead = self.successors.remove(0);
                self.fingers.retain(|_, m| m.id != dead.id);
                self.open_investigation(dead.id);
                ctx.trace(EventKind::NeighborMiss {
                    neighbor: dead.id.value(),
                    strikes: u32::from(self.stabilize_strikes),
                });
                self.stabilize_strikes = 0;
            } else if self.stabilize_strikes >= 4 && self.successors.len() == 1 {
                // Last-resort escape: the only remaining successor is
                // dead, and the list can only be replenished by its
                // replies — which will never come. Reseed from the
                // nearest clockwise finger (extra strikes first, since
                // this jump may overshoot live nodes and stabilization
                // must walk it back).
                let dead = self.successors[0];
                let replacement = self
                    .fingers
                    .values()
                    .filter(|m| m.id != dead.id && m.id != self.me.id)
                    .min_by_key(|m| self.space.seg_len(self.me.id, m.id))
                    .copied();
                if let Some(next) = replacement {
                    self.successors[0] = next;
                    self.fingers.retain(|_, m| m.id != dead.id);
                    self.open_investigation(dead.id);
                    ctx.trace(EventKind::NeighborMiss {
                        neighbor: dead.id.value(),
                        strikes: u32::from(self.stabilize_strikes),
                    });
                    self.stabilize_strikes = 0;
                }
            }
        } else {
            self.stabilize_strikes = 0;
        }
        ctx.trace(EventKind::StabilizeRound {
            successors: self.successors.len() as u32,
        });
        if let Some(succ) = self.successors.first().copied() {
            self.awaiting_stabilize = true;
            self.send_to_member(ctx, succ.id, DhtMsg::StabilizeQuery);
        }
        // Chord's check_predecessor: the probe from the previous tick went
        // unanswered — strike; two strikes clear the predecessor so a live
        // claimant's Notify can take the slot.
        if let Some((_, probed)) = self.pending_pred_ping.take() {
            if self.predecessor.map(|p| p.id) == Some(probed) {
                self.pred_strikes += 1;
                if self.pred_strikes >= 2 {
                    self.predecessor = None;
                    self.pred_strikes = 0;
                }
            } else {
                self.pred_strikes = 0;
            }
        }
        if let Some(pred) = self.predecessor {
            let req_id = self.fresh_req_id();
            self.pending_pred_ping = Some((req_id, pred.id));
            self.send_to_member(ctx, pred.id, DhtMsg::Ping { req_id });
        }
        // Deep successor-list liveness sweep. The head is vetted by the
        // stabilize query itself, but deeper entries are only ever
        // replaced wholesale by adopted lists — a dead deep entry could
        // survive indefinitely and be re-advertised to peers (exactly
        // what a stale-incarnation adversary exploits). Probe one
        // non-head entry per round, round-robin; two consecutive
        // unanswered probes evict it everywhere and record it as
        // confirmed dead, which is what lets the stale-claim detector
        // recognize its re-advertisement.
        if let Some((_, probed)) = self.pending_succ_ping.take() {
            if self.successors.iter().skip(1).any(|m| m.id == probed) {
                let strikes = self.succ_strikes.entry(probed.value()).or_insert(0);
                *strikes += 1;
                let strikes = *strikes;
                if strikes >= 2 {
                    if let Some(pos) = self.successors.iter().position(|m| m.id == probed) {
                        if pos > 0 {
                            self.successors.remove(pos);
                        }
                    }
                    self.fingers.retain(|_, m| m.id != probed);
                    self.open_investigation(probed);
                    ctx.trace(EventKind::NeighborMiss {
                        neighbor: probed.value(),
                        strikes: u32::from(strikes),
                    });
                }
            } else {
                self.succ_strikes.remove(&probed.value());
            }
        }
        if self.successors.len() > 1 {
            let idx = 1 + self.succ_probe_cursor % (self.successors.len() - 1);
            self.succ_probe_cursor = self.succ_probe_cursor.wrapping_add(1);
            let target = self.successors[idx];
            let req_id = self.fresh_req_id();
            self.pending_succ_ping = Some((req_id, target.id));
            self.send_to_member(ctx, target.id, DhtMsg::Ping { req_id });
        }
        ctx.set_timer(self.stabilize_every, TIMER_STABILIZE);
    }

    fn handle_fix_fingers_timer<D: DhtDriver>(&mut self, ctx: &mut D) {
        // 1. Probes from the previous round that never came back: give the
        //    probed member a strike; two consecutive strikes (distinguishing
        //    death from a single lost Ping/Pong) evict every finger pointing
        //    at it, so neither routing nor multicast forwards into the void.
        let mut timed_out: Vec<(u64, Id)> =
            self.pending_pings.drain().map(|(_, v)| v).collect();
        timed_out.sort_unstable(); // hash order must not steer evictions
        for (_, suspect) in timed_out {
            let strikes = self.ping_strikes.entry(suspect.value()).or_insert(0);
            *strikes += 1;
            let strikes = *strikes;
            if strikes >= 2 {
                self.fingers.retain(|_, m| m.id != suspect);
                self.ping_strikes.remove(&suspect.value());
                self.open_investigation(suspect);
                ctx.trace(EventKind::NeighborMiss {
                    neighbor: suspect.value(),
                    strikes: u32::from(strikes),
                });
            }
        }
        // 2. Probe and refresh a window of finger slots, round-robin via a
        //    dedicated cursor (the cursor advances by exactly the window
        //    size, so every slot is visited every ⌈len/3⌉ rounds — indexing
        //    by request-id arithmetic would skip slots whenever the id
        //    stride shared a factor with the table length).
        let me_actor = ctx.me();
        if !self.targets.is_empty() {
            let len = self.targets.len();
            let window = 3.min(len);
            let mut probe_victims: Vec<(u64, Id)> = Vec::new();
            for i in 0..window {
                let idx = (self.fix_cursor + i) % len;
                let target = self.targets[idx];
                // Probe the current resident of the slot…
                if let Some(m) = self.fingers.get(&target.value()) {
                    probe_victims.push((target.value(), m.id));
                }
                // …and re-resolve the slot.
                let req_id = self.fresh_req_id();
                self.pending
                    .insert(req_id, PendingLookup::FixFinger(target));
                let state = self.protocol.initial_state(self.space, &self.me, target);
                self.handle_lookup(ctx, target, req_id, me_actor, 0, state);
            }
            self.fix_cursor = (self.fix_cursor + window) % len;
            for (target, member_id) in probe_victims {
                let req_id = self.fresh_req_id();
                self.pending_pings.insert(req_id, (target, member_id));
                self.send_to_member(ctx, member_id, DhtMsg::Ping { req_id });
            }
        }
        ctx.set_timer(self.stabilize_every.saturating_mul(2), TIMER_FIX_FINGERS);
    }
}

impl<P: DhtProtocol> DhtActor<P> {
    /// Feeds one message into the actor through any [`DhtDriver`].
    ///
    /// This is the host-agnostic message entry point: the simulator's
    /// [`Actor::on_message`] forwards here, and `cam-net`'s runtime calls
    /// it directly with decoded wire frames.
    pub fn deliver<D: DhtDriver>(&mut self, ctx: &mut D, from: ActorId, msg: DhtMsg) {
        // A node that has not completed its (re)join is not a ring member
        // yet. Answering liveness or stabilize traffic here would let a
        // restarted node masquerade as its pre-crash incarnation: its old
        // successor keeps it as predecessor (pings answered), and its old
        // predecessor adopts its *empty* successor list from a
        // StabilizeReply — which can collapse that list to just this
        // zombie and wedge the ring permanently. Until the join handshake
        // finishes, only the handshake itself is processed; everything
        // else sees this node as what it currently is — absent.
        if !self.joined && !matches!(msg, DhtMsg::JoinAnswer { .. }) {
            return;
        }
        match msg {
            DhtMsg::Lookup {
                key,
                req_id,
                reply_to,
                hops,
                state,
            } => self.handle_lookup(ctx, key, req_id, reply_to, hops, state),
            DhtMsg::LookupDone {
                req_id,
                owner,
                gave_up,
                ..
            } => match self.pending.remove(&req_id) {
                Some(PendingLookup::FixFinger(target)) if !gave_up => {
                    let owner = self.vet(ctx, owner);
                    ctx.trace(EventKind::NeighborResolve {
                        target: target.value(),
                        neighbor: owner.id.value(),
                    });
                    self.fingers.insert(target.value(), owner);
                }
                _ => {}
            },
            DhtMsg::StabilizeQuery => {
                let reply = self.answer_stabilize(ctx);
                ctx.send(from, reply);
            }
            DhtMsg::StabilizeReply {
                predecessor,
                successors,
            } => {
                self.awaiting_stabilize = false;
                // Incarnation-regression guard: drop advertised members
                // this node has itself confirmed dead — adopting them
                // would resurrect a stale incarnation into the ring. Every
                // flagged claim re-probes the member: if the local
                // eviction was wrong (probe losses, or the member crashed
                // and has since rejoined), its Pong clears the blacklist
                // and the next advertisement is adopted normally. A node
                // mid-rejoin swallows pings until its join completes, so
                // the probe must repeat, not fire once — and if even the
                // probes keep getting lost, the verdict's round budget
                // (see `DEAD_VERDICT_ROUNDS`) lapses as a backstop.
                let mut vetted: Vec<Member> = Vec::with_capacity(successors.len());
                for m in successors {
                    if self.confirmed_dead.contains_key(&m.id.value()) {
                        self.detections.stale_claims += 1;
                        ctx.trace(EventKind::AdversaryDetect {
                            detector: "stale_claim",
                            suspect: m.id.value(),
                            payload: 0,
                        });
                        let req_id = self.fresh_req_id();
                        self.send_to_member(ctx, m.id, DhtMsg::Ping { req_id });
                        continue;
                    }
                    let m = self.vet(ctx, m);
                    vetted.push(m);
                }
                let successors = vetted;
                let predecessor = match predecessor {
                    Some(p) if self.confirmed_dead.contains_key(&p.id.value()) => {
                        self.detections.stale_claims += 1;
                        ctx.trace(EventKind::AdversaryDetect {
                            detector: "stale_claim",
                            suspect: p.id.value(),
                            payload: 0,
                        });
                        let req_id = self.fresh_req_id();
                        self.send_to_member(ctx, p.id, DhtMsg::Ping { req_id });
                        None
                    }
                    Some(p) => Some(self.vet(ctx, p)),
                    None => None,
                };
                // Chord stabilize: if succ's predecessor is between me and
                // succ, adopt it as my successor.
                if let (Some(p), Some(succ)) = (predecessor, self.successors.first().copied()) {
                    if p.id != self.me.id && self.space.in_segment(p.id, self.me.id, succ.id) {
                        let mut list = vec![p];
                        list.extend(self.successors.iter().copied());
                        list.truncate(SUCCESSOR_LIST_LEN);
                        self.successors = list;
                    } else {
                        // Adopt succ's list shifted behind succ.
                        let mut list = vec![succ];
                        list.extend(successors.into_iter().filter(|m| m.id != succ.id));
                        list.truncate(SUCCESSOR_LIST_LEN);
                        self.successors = list;
                    }
                }
                if let Some(succ) = self.successors.first().copied() {
                    let me = self.advertised_self(ctx);
                    self.send_to_member(ctx, succ.id, DhtMsg::Notify(me));
                }
            }
            DhtMsg::Notify(candidate) => {
                // The candidate itself sent this — it is provably alive.
                self.mark_alive(candidate.id);
                let candidate = self.vet(ctx, candidate);
                let adopt = match &self.predecessor {
                    None => true,
                    Some(p) => self.space.in_segment(candidate.id, p.id, self.me.id),
                };
                if adopt && candidate.id != self.me.id {
                    self.predecessor = Some(candidate);
                }
            }
            DhtMsg::Ping { req_id } => {
                let member = self.advertised_self(ctx);
                ctx.send(from, DhtMsg::Pong { req_id, member });
            }
            DhtMsg::Pong { req_id, member } => {
                // Any Pong proves the member is alive right now.
                self.mark_alive(member.id);
                let member = self.vet(ctx, member);
                if self.pending_succ_ping.map(|(id, _)| id) == Some(req_id) {
                    self.pending_succ_ping = None;
                } else if self.pending_pred_ping.map(|(id, _)| id) == Some(req_id) {
                    self.pending_pred_ping = None;
                    self.pred_strikes = 0;
                } else if let Some((target, probed)) = self.pending_pings.remove(&req_id) {
                    if probed == member.id {
                        // The member answered: clear any strike from a
                        // previously lost probe. Refresh the entry only if
                        // the slot still points at it — a concurrent
                        // fix-finger lookup may have re-resolved the slot
                        // to a newer owner, and a late Pong from the old
                        // (alive but no longer responsible) resident must
                        // not clobber that resolution back to stale.
                        self.ping_strikes.remove(&member.id.value());
                        if self.fingers.get(&target).is_some_and(|m| m.id == probed) {
                            self.fingers.insert(target, member);
                        }
                    }
                }
            }
            DhtMsg::Multicast {
                payload,
                region,
                hops,
                data,
            } => self.handle_multicast(ctx, from, payload, region, hops, data),
            DhtMsg::AntiEntropyDigest { have } => {
                let their: std::collections::HashSet<u64> = have.iter().copied().collect();
                // Push what they're missing… (sorted: deterministic order)
                let mut missing: Vec<(u64, u32)> = self
                    .seen_payloads
                    .iter()
                    .filter(|(p, _)| !their.contains(p))
                    .map(|(&p, &hops)| (p, hops))
                    .collect();
                missing.sort_unstable();
                for (p, hops) in missing {
                    let data = self.delivered_data.get(&p).cloned().unwrap_or_default();
                    ctx.send(
                        from,
                        DhtMsg::PayloadPush {
                            payload: p,
                            hops: hops + 1,
                            data,
                        },
                    );
                }
                // …and pull what we're missing.
                let want: Vec<u64> = have
                    .into_iter()
                    .filter(|p| !self.seen_payloads.contains_key(p))
                    .collect();
                if !want.is_empty() {
                    ctx.send(from, DhtMsg::PayloadPullReq { want });
                }
            }
            DhtMsg::PayloadPullReq { want } => {
                for p in want {
                    if let Some(&hops) = self.seen_payloads.get(&p) {
                        let data = self.delivered_data.get(&p).cloned().unwrap_or_default();
                        ctx.send(
                            from,
                            DhtMsg::PayloadPush {
                                payload: p,
                                hops: hops + 1,
                                data,
                            },
                        );
                    }
                }
            }
            DhtMsg::PayloadPush {
                payload,
                hops,
                data,
            } => {
                if let std::collections::hash_map::Entry::Vacant(e) =
                    self.seen_payloads.entry(payload)
                {
                    e.insert(hops);
                    self.received_log.push((payload, hops));
                    self.delivered_data.insert(payload, data);
                    // Tree delivery failed for this payload and epidemic
                    // repair recovered it — the observable footprint of
                    // dropped/misrouted forwards upstream. Unattributable
                    // to a specific peer, hence suspect 0.
                    self.detections.repair_recoveries += 1;
                    ctx.trace(EventKind::AdversaryDetect {
                        detector: "repair_recovery",
                        suspect: 0,
                        payload,
                    });
                }
            }
            DhtMsg::JoinRequest {
                joiner,
                joiner_actor,
            } => {
                // A rejoining member originated this request moments ago:
                // clear any confirmed-dead verdict so its fresh
                // incarnation can be re-adopted.
                self.mark_alive(joiner.id);
                let joiner = self.vet(ctx, joiner);
                // Route a lookup for the joiner's id; when it completes we
                // cannot intercept here without more state, so answer
                // directly if we already know: simplest correct behaviour is
                // to forward the request greedily toward the owner.
                if let Some(pred) = self.predecessor {
                    // `pred.id == joiner.id` is a *rejoin*: a node that
                    // crashed and restarted while we still list it as
                    // predecessor (it keeps answering pings, so failure
                    // detection never evicts it). The segment check alone
                    // excludes that case — (pred, me] does not contain
                    // pred — and the request would orbit forever.
                    if pred.id == joiner.id
                        || self.space.in_segment(joiner.id, pred.id, self.me.id)
                    {
                        ctx.trace(EventKind::JoinRequest {
                            joiner: joiner.id.value(),
                        });
                        let mut successors = vec![self.advertised_self(ctx)];
                        successors.extend(self.successors.iter().copied());
                        successors.truncate(SUCCESSOR_LIST_LEN);
                        ctx.send(joiner_actor, DhtMsg::JoinAnswer { successors });
                        return;
                    }
                }
                if let Some(succ) = self.successors.first().copied() {
                    if self.space.in_segment(joiner.id, self.me.id, succ.id) {
                        ctx.trace(EventKind::JoinRequest {
                            joiner: joiner.id.value(),
                        });
                        // My own successor list *is* the joiner's future
                        // list (it starts at succ).
                        ctx.send(
                            joiner_actor,
                            DhtMsg::JoinAnswer {
                                successors: self.successors.clone(),
                            },
                        );
                        return;
                    }
                    // Greedy clockwise step, NOT `protocol.next_hop`: the
                    // protocol's routing may thread per-request state
                    // across hops (Koorde's absorbed-bit chain rides in
                    // `Lookup.state`), and a JoinRequest has nowhere to
                    // carry it. Recomputing fresh state each hop makes de
                    // Bruijn hops jump without converging — the request
                    // can orbit the ring forever. Greedy clockwise
                    // progress is protocol-agnostic and terminates: every
                    // hop strictly shrinks the distance to the joiner
                    // (the successor is always in `(me, joiner)` here,
                    // since `(me, succ]` was handled above).
                    let neighbors = self.neighbor_members();
                    let next = neighbors
                        .iter()
                        .chain(std::iter::once(&succ))
                        .filter(|m| {
                            self.space.in_segment(m.id, self.me.id, joiner.id)
                                && m.id != joiner.id
                        })
                        .max_by_key(|m| self.space.seg_len(self.me.id, m.id))
                        .map_or(succ.id, |m| m.id);
                    let next = if next == self.me.id { succ.id } else { next };
                    self.send_to_member(
                        ctx,
                        next,
                        DhtMsg::JoinRequest {
                            joiner,
                            joiner_actor,
                        },
                    );
                }
            }
            DhtMsg::JoinAnswer { successors } => {
                // A rejoining node can be offered a list that still
                // contains its own pre-crash incarnation (its old
                // successor answers with a list starting at the joiner).
                // Adopting ourselves as successor would wedge the ring.
                let mut successors: Vec<Member> = successors
                    .into_iter()
                    .filter(|m| m.id != self.me.id)
                    .collect();
                for m in &mut successors {
                    *m = self.vet(ctx, *m);
                }
                if !self.joined && !successors.is_empty() {
                    ctx.trace(EventKind::JoinComplete {
                        joiner: self.me.id.value(),
                    });
                    let head = successors[0];
                    self.successors = successors;
                    self.successors.truncate(SUCCESSOR_LIST_LEN);
                    self.joined = true;
                    let me = self.advertised_self(ctx);
                    self.send_to_member(ctx, head.id, DhtMsg::Notify(me));
                    ctx.set_timer(Duration::from_millis(50), TIMER_STABILIZE);
                    ctx.set_timer(Duration::from_millis(100), TIMER_FIX_FINGERS);
                    ctx.set_timer(Duration::from_millis(150), TIMER_ANTI_ENTROPY);
                }
            }
            DhtMsg::GroupSubscribe { group, member } => {
                self.handle_group_membership(ctx, group, member, true)
            }
            DhtMsg::GroupUnsubscribe { group, member } => {
                self.handle_group_membership(ctx, group, member, false)
            }
            DhtMsg::GroupPublish {
                group,
                payload,
                region,
                hops,
                data,
            } => self.handle_group_publish(ctx, from, group, payload, region, hops, data),
        }
    }

    /// Feeds one timer expiry into the actor through any [`DhtDriver`]
    /// (host-agnostic counterpart of [`Actor::on_timer`]).
    pub fn deliver_timer<D: DhtDriver>(&mut self, ctx: &mut D, tag: u64) {
        match tag {
            TIMER_STABILIZE => self.handle_stabilize_timer(ctx),
            TIMER_FIX_FINGERS => self.handle_fix_fingers_timer(ctx),
            TIMER_ANTI_ENTROPY => self.handle_anti_entropy_timer(ctx),
            _ => {}
        }
    }

    /// Arms the periodic maintenance timers through a [`DhtDriver`] —
    /// what [`DhtActor::start_maintenance`] does for the simulator, for
    /// hosts that are not a [`Simulation`]. `jitter` desynchronizes the
    /// nodes' maintenance phases.
    pub fn arm_maintenance<D: DhtDriver>(&mut self, drv: &mut D, jitter: u64) {
        let base = Duration::from_millis(500);
        drv.set_timer(base + Duration::from_millis(jitter % 250), TIMER_STABILIZE);
        drv.set_timer(
            base.saturating_mul(2) + Duration::from_millis(jitter % 333),
            TIMER_FIX_FINGERS,
        );
        drv.set_timer(
            base.saturating_mul(3) + Duration::from_millis(jitter % 451),
            TIMER_ANTI_ENTROPY,
        );
    }
}

impl<P: DhtProtocol> Actor for DhtActor<P> {
    type Msg = DhtMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, DhtMsg>, from: ActorId, msg: DhtMsg) {
        self.deliver(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DhtMsg>, tag: u64) {
        self.deliver_timer(ctx, tag);
    }
}

/// A harness owning a simulation of [`DhtActor`]s plus the id → actor
/// directory, with convenience operations for the churn experiments.
pub struct DynamicNetwork<P: DhtProtocol> {
    /// The underlying event simulation.
    pub sim: Simulation<DhtActor<P>>,
    space: IdSpace,
    actors: Vec<(Member, ActorId)>,
    next_payload: u64,
}

impl<P: DhtProtocol> DynamicNetwork<P> {
    /// Builds a *converged* network of the given members: every node starts
    /// with correct successors, predecessor, and fingers (what
    /// stabilization would eventually produce), and maintenance timers
    /// running. Use [`DynamicNetwork::kill_random`] / [`DynamicNetwork::inject_join`] to perturb it.
    pub fn converged(
        space: IdSpace,
        members: &[Member],
        protocol: P,
        seed: u64,
        latency: LatencyModel,
    ) -> Self {
        let mut sorted = members.to_vec();
        sorted.sort_by_key(|m| m.id);
        let n = sorted.len();
        assert!(n > 0, "empty network");

        let mut sim = Simulation::new(seed, latency);
        let mut actors = Vec::with_capacity(n);
        for m in &sorted {
            let actor = DhtActor::new(space, *m, protocol.clone());
            let id = sim.add_actor(actor);
            actors.push((*m, id));
        }
        // One shared allocation for every actor's address book — the
        // per-actor clone this replaces made 100k-node networks `O(n²)`.
        let directory: std::sync::Arc<HashMap<u64, ActorId>> =
            std::sync::Arc::new(actors.iter().map(|(m, a)| (m.id.value(), *a)).collect());

        // Oracle resolution of every node's pointers.
        let ids: Vec<Id> = sorted.iter().map(|m| m.id).collect();
        let owner_of = |k: Id| -> Member {
            let i = ids.partition_point(|&x| x < k);
            sorted[if i == n { 0 } else { i }]
        };
        for (i, (m, actor_id)) in actors.iter().enumerate() {
            let succs: Vec<Member> = (1..=SUCCESSOR_LIST_LEN.min(n.saturating_sub(1)).max(1))
                .map(|d| sorted[(i + d) % n])
                .collect();
            let pred = sorted[(i + n - 1) % n];
            let targets = protocol.neighbor_targets(space, m);
            let fingers: Vec<(Id, Member)> =
                targets.iter().map(|&t| (t, owner_of(t))).collect();
            let a = sim.actor_mut(*actor_id).expect("just added");
            a.seed_state(succs, pred, fingers);
            a.set_directory(std::sync::Arc::clone(&directory));
        }
        for (i, (_, actor_id)) in actors.iter().enumerate() {
            DhtActor::start_maintenance(&mut sim, *actor_id, i as u64 * 37);
        }
        DynamicNetwork {
            sim,
            space,
            actors,
            next_payload: 1,
        }
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Live members, in ring order.
    pub fn live_members(&self) -> Vec<Member> {
        self.actors
            .iter()
            .filter(|(_, a)| self.sim.is_alive(*a))
            .map(|(m, _)| *m)
            .collect()
    }

    /// All `(member, actor)` pairs ever added.
    pub fn actors(&self) -> &[(Member, ActorId)] {
        &self.actors
    }

    /// Kills `count` distinct random live nodes (crash failures), never the
    /// node at `spare` (usually the multicast source), and returns how many
    /// were killed.
    pub fn kill_random(&mut self, count: usize, spare: ActorId, rng_seed: u64) -> usize {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut candidates: Vec<ActorId> = self
            .actors
            .iter()
            .map(|(_, a)| *a)
            .filter(|a| *a != spare && self.sim.is_alive(*a))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        candidates.shuffle(&mut rng);
        let victims = candidates.into_iter().take(count).collect::<Vec<_>>();
        for v in &victims {
            self.sim.kill(*v);
            let at = self.sim.now().micros();
            self.sim
                .tracer_mut()
                .record(at, v.0 as u64, EventKind::Crash);
        }
        victims.len()
    }

    /// Adds a fresh member as a live actor and starts its join through a
    /// random live bootstrap node. The harness updates every node's
    /// address book (directory) — the deployment equivalent is carrying
    /// addresses on the wire.
    ///
    /// Returns the new actor id, or `None` if the member's identifier is
    /// already present or no live bootstrap exists.
    pub fn inject_join(&mut self, member: Member, protocol: P) -> Option<ActorId> {
        if self.actors.iter().any(|(m, _)| m.id == member.id) {
            return None;
        }
        let bootstrap = self
            .actors
            .iter()
            .map(|(_, a)| *a)
            .find(|a| self.sim.is_alive(*a))?;
        let actor = DhtActor::new(self.space, member, protocol);
        let new_id = self.sim.add_actor(actor);
        self.actors.push((member, new_id));
        // Rebuild the authoritative address book once and re-share it with
        // every actor (newcomer included): one O(n) allocation instead of
        // n copy-on-write clones.
        self.reshare_directory();
        self.sim.post(
            new_id,
            bootstrap,
            DhtMsg::JoinRequest {
                joiner: member,
                joiner_actor: new_id,
            },
        );
        Some(new_id)
    }

    /// Restarts the crashed member `id` with *fresh* state — the sim-host
    /// counterpart of a host rebooting: same ring identity, empty routing
    /// tables and payload store, rejoining through a live peer. The dead
    /// actor's slot stays dead (the simulator drops traffic to it, exactly
    /// like frames addressed to the pre-crash incarnation); the member's
    /// directory entry is re-pointed at the new incarnation everywhere.
    ///
    /// Returns the new actor id, or `None` if `id` is unknown or still
    /// alive (a running node cannot be restarted).
    pub fn revive(&mut self, id: Id, protocol: P) -> Option<ActorId> {
        let pos = self.actors.iter().position(|(m, _)| m.id == id)?;
        let (member, old) = self.actors[pos];
        if self.sim.is_alive(old) {
            return None;
        }
        let actor = DhtActor::new(self.space, member, protocol);
        let new_id = self.sim.add_actor(actor);
        self.actors[pos].1 = new_id;
        // Repoint the member's entry at the new incarnation everywhere by
        // rebuilding the shared book from the (updated) authoritative list.
        self.reshare_directory();
        let at = self.sim.now().micros();
        self.sim
            .tracer_mut()
            .record(at, new_id.0 as u64, EventKind::Restart);
        if let Some(bootstrap) = self.bootstrap_for(new_id) {
            self.sim.post(
                new_id,
                bootstrap,
                DhtMsg::JoinRequest {
                    joiner: member,
                    joiner_actor: new_id,
                },
            );
        }
        Some(new_id)
    }

    /// Rebuilds the id → actor directory from `self.actors` and installs
    /// the single shared allocation on every live actor.
    fn reshare_directory(&mut self) {
        let directory: std::sync::Arc<HashMap<u64, ActorId>> = std::sync::Arc::new(
            self.actors
                .iter()
                .map(|(m, a)| (m.id.value(), *a))
                .collect(),
        );
        for &(_, a) in &self.actors {
            if let Some(actor) = self.sim.actor_mut(a) {
                actor.set_directory(std::sync::Arc::clone(&directory));
            }
        }
    }

    /// The first live, joined actor other than `exclude` — the bootstrap
    /// peer for joins, restarts, and join retries.
    fn bootstrap_for(&self, exclude: ActorId) -> Option<ActorId> {
        self.actors
            .iter()
            .map(|(_, a)| *a)
            .find(|a| *a != exclude && self.sim.actor(*a).is_some_and(DhtActor::is_joined))
    }

    /// Re-sends a join request for every live actor whose join has not
    /// completed — e.g. a joiner whose bootstrap crashed before answering.
    /// Join traffic is best-effort, so without retries such a node would
    /// stay stranded forever. Returns how many requests were re-sent.
    pub fn retry_stalled_joins(&mut self) -> usize {
        let stalled: Vec<(Member, ActorId)> = self
            .actors
            .iter()
            .copied()
            .filter(|(_, a)| self.sim.actor(*a).is_some_and(|x| !x.is_joined()))
            .collect();
        let mut retried = 0;
        for (member, a) in stalled {
            let Some(bootstrap) = self.bootstrap_for(a) else {
                continue;
            };
            self.sim.post(
                a,
                bootstrap,
                DhtMsg::JoinRequest {
                    joiner: member,
                    joiner_actor: a,
                },
            );
            retried += 1;
        }
        retried
    }

    /// Removes the member with identifier `id` (crash semantics: peers
    /// discover the departure through failure detection). Returns whether
    /// a live actor was removed.
    pub fn remove_member(&mut self, id: Id) -> bool {
        match self.actor_of(id) {
            Some(a) if self.sim.is_alive(a) => {
                self.sim.kill(a);
                let at = self.sim.now().micros();
                self.sim
                    .tracer_mut()
                    .record(at, a.0 as u64, EventKind::Leave);
                true
            }
            _ => false,
        }
    }

    /// Enables anti-entropy payload repair on every live node (see
    /// [`DhtActor::set_anti_entropy`]).
    pub fn enable_anti_entropy(&mut self) {
        let pairs: Vec<ActorId> = self.actors.iter().map(|(_, a)| *a).collect();
        for a in pairs {
            if let Some(actor) = self.sim.actor_mut(a) {
                actor.set_anti_entropy(true);
            }
        }
    }

    /// The actor id of the member with identifier `id`, if it ever joined.
    pub fn actor_of(&self, id: Id) -> Option<ActorId> {
        self.actors
            .iter()
            .find(|(m, _)| m.id == id)
            .map(|(_, a)| *a)
    }

    /// Initiates a multicast at `source` and returns the payload id.
    ///
    /// `region_split`: `true` for CAM-Chord-style region multicast, `false`
    /// for flooding. The payload is injected as a self-addressed message.
    pub fn start_multicast(&mut self, source: ActorId, region_split: bool) -> u64 {
        self.start_multicast_with_data(source, region_split, bytes::Bytes::new())
    }

    /// Like [`DynamicNetwork::start_multicast`], carrying application
    /// bytes that every member receives along with the header.
    pub fn start_multicast_with_data(
        &mut self,
        source: ActorId,
        region_split: bool,
        data: bytes::Bytes,
    ) -> u64 {
        let payload = self.next_payload;
        self.next_payload += 1;
        let member = self
            .sim
            .actor(source)
            .expect("source must be alive")
            .member()
            .id;
        let region = if region_split {
            Some(Segment::all_but(self.space, member))
        } else {
            None
        };
        self.sim.post(
            source,
            source,
            DhtMsg::Multicast {
                payload,
                region,
                hops: 0,
                data,
            },
        );
        payload
    }

    /// Subscribes the node behind `actor` to pub/sub group `group`: its
    /// local delivery filter flips immediately (self-addressed message) and
    /// the membership routes to the group's rendezvous root over the
    /// overlay.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is dead.
    pub fn subscribe(&mut self, actor: ActorId, group: u64) {
        let member = self
            .sim
            .actor(actor)
            .expect("subscriber must be alive")
            .member()
            .id
            .value();
        self.sim
            .post(actor, actor, DhtMsg::GroupSubscribe { group, member });
    }

    /// Removes `actor`'s subscription to `group` (routed like
    /// [`DynamicNetwork::subscribe`]).
    ///
    /// # Panics
    ///
    /// Panics if `actor` is dead.
    pub fn unsubscribe(&mut self, actor: ActorId, group: u64) {
        let member = self
            .sim
            .actor(actor)
            .expect("unsubscriber must be alive")
            .member()
            .id
            .value();
        self.sim
            .post(actor, actor, DhtMsg::GroupUnsubscribe { group, member });
    }

    /// Initiates a publish in `group` at `source` and returns the payload
    /// id. Forwarding covers the whole ring (the per-group tree is
    /// implicit; non-subscribers relay without delivering), exactly like
    /// [`DynamicNetwork::start_multicast`].
    ///
    /// # Panics
    ///
    /// Panics if `source` is dead.
    pub fn start_group_publish(
        &mut self,
        source: ActorId,
        group: u64,
        region_split: bool,
    ) -> u64 {
        let payload = self.next_payload;
        self.next_payload += 1;
        let member = self
            .sim
            .actor(source)
            .expect("source must be alive")
            .member()
            .id;
        let region = if region_split {
            Some(Segment::all_but(self.space, member))
        } else {
            None
        };
        self.sim.post(
            source,
            source,
            DhtMsg::GroupPublish {
                group,
                payload,
                region,
                hops: 0,
                data: bytes::Bytes::new(),
            },
        );
        payload
    }

    /// Folds the given `(group, payload)` publishes into a per-group
    /// [`GroupDeliveryCensus`] over the *subscribers* of each group: a live
    /// subscriber counts as delivered iff the publish reached it. Dead
    /// actors are excluded, mirroring [`DeliveryCensus`].
    pub fn group_delivery_census(&self, publishes: &[(u64, u64)]) -> GroupDeliveryCensus {
        let mut census = GroupDeliveryCensus::new();
        for (_, a) in &self.actors {
            if let Some(actor) = self.sim.actor(*a) {
                for &(group, payload) in publishes {
                    if actor.is_subscribed(group) {
                        census.observe(group, true, actor.has_group_payload(group, payload));
                    }
                }
            }
        }
        census
    }

    /// Fraction of live nodes that received `payload`, via the shared
    /// [`DeliveryCensus`] (the net `Cluster` folds through the same code).
    pub fn delivery_ratio(&self, payload: u64) -> f64 {
        let mut census = DeliveryCensus::new();
        for (_, a) in &self.actors {
            let actor = self.sim.actor(*a);
            census.observe(
                actor.is_some(),
                actor.is_some_and(|x| x.payload_hops(payload).is_some()),
            );
        }
        census.ratio()
    }

    /// Mean hop count of `payload` over nodes that received it.
    pub fn mean_hops(&self, payload: u64) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for (_, a) in &self.actors {
            if let Some(actor) = self.sim.actor(*a) {
                if let Some(h) = actor.payload_hops(payload) {
                    total += u64::from(h);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}
