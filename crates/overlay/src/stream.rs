//! Streaming tree statistics: fold a multicast run into [`TreeStats`]
//! without materializing the tree.
//!
//! At the paper's scale (100k members) a [`MulticastTree`] is cheap; at a
//! million members its flat arrays (parent, hops, fanout, delivery log) cost
//! ~20 MB *per tree* and force a second full pass to extract statistics.
//! The sweep harness only ever needs the [`TreeStats`] summary plus the
//! bottleneck throughput, so the multicast drivers are generic over a
//! [`DeliverySink`]: the materialized tree is one sink, and
//! [`StreamingTreeStats`] is another that accumulates the same numbers in
//! `O(depth)` memory during the traversal itself.
//!
//! # Exactness
//!
//! Streaming results are **bit-identical** to `tree.stats()` +
//! `tree.bottleneck_throughput_kbps(group)`, not merely close:
//!
//! * counts, hop totals, and the histogram are integer accumulators, so
//!   accumulation order cannot matter;
//! * the two `f64` averages are single divisions of those exact integers;
//! * the bottleneck is a running `min` over finite positive `f64` ratios,
//!   and `min` is order-independent.
//!
//! The parity tests (`cam-core` unit tests and the workspace proptests)
//! hold both sinks to exact equality on identical runs.
//!
//! # Sink contract
//!
//! [`StreamingTreeStats`] assumes deliveries arrive **grouped by parent**:
//! all of a node's children are reported consecutively, and a node's run of
//! deliveries appears at most once. Both workspace drivers (the CAM-Chord
//! region partition and the CAM-Koorde flood) process each node exactly
//! once and emit its children back-to-back, so the assumption holds by
//! construction; fanout is then recovered by run-length counting instead of
//! an `O(n)` per-member array. [`MulticastTree`] has no such requirement.

use crate::tree::TreeStats;
use crate::{MemberSet, MulticastTree};

/// A consumer of multicast delivery events, fed by the tree drivers.
///
/// `hops` is the child's distance from the source (parent's distance + 1).
/// Returning `false` reports that `child` had already received the message;
/// the driver must not forward through it again. Sinks that cannot detect
/// duplicates (e.g. [`StreamingTreeStats`]) always return `true` and rely
/// on the driver's exactly-once guarantee.
pub trait DeliverySink {
    /// Records that `parent` forwarded the message to `child` at hop
    /// distance `hops`. Returns `false` iff the delivery was a duplicate.
    fn deliver(&mut self, parent: usize, child: usize, hops: u32) -> bool;
}

impl DeliverySink for MulticastTree {
    fn deliver(&mut self, parent: usize, child: usize, hops: u32) -> bool {
        let fresh = MulticastTree::deliver(self, parent, child);
        debug_assert!(
            !fresh || self.hops_to(child) == Some(hops),
            "driver hop count diverged from tree bookkeeping"
        );
        fresh
    }
}

/// Sentinel parent index for "no run open yet".
const NO_RUN: usize = usize::MAX;

/// A [`DeliverySink`] that computes [`TreeStats`] and the bottleneck
/// throughput on the fly, holding only the hop histogram and the current
/// parent run — `O(depth)` memory instead of the tree's `O(n)`.
///
/// See the [module docs](self) for the exactness argument and the
/// grouped-by-parent contract.
#[derive(Debug, Clone)]
pub struct StreamingTreeStats<'a> {
    group: &'a MemberSet,
    delivered: usize,
    total_hops: u64,
    depth: u32,
    /// `hist[h]` = members at hop distance `h`; starts as `[1]` (the source).
    hist: Vec<u64>,
    /// Parent of the delivery run currently being counted, or [`NO_RUN`].
    run_parent: usize,
    run_len: u32,
    internal_nodes: usize,
    total_children: u64,
    max_fanout: usize,
    /// Running `min(upload_kbps / fanout)` over closed runs.
    min_ratio: f64,
}

impl<'a> StreamingTreeStats<'a> {
    /// Starts a streaming accumulation for one multicast over `group`.
    pub fn new(group: &'a MemberSet) -> Self {
        StreamingTreeStats {
            group,
            delivered: 1,
            total_hops: 0,
            depth: 0,
            hist: vec![1],
            run_parent: NO_RUN,
            run_len: 0,
            internal_nodes: 0,
            total_children: 0,
            max_fanout: 0,
            min_ratio: f64::INFINITY,
        }
    }

    /// Folds the finished run of `run_parent` into the internal-node
    /// aggregates — mirrors one `fanout > 0` member of the materialized
    /// `stats()` / `bottleneck_throughput_kbps` loops.
    fn close_run(&mut self) {
        if self.run_parent != NO_RUN && self.run_len > 0 {
            self.internal_nodes += 1;
            self.total_children += u64::from(self.run_len);
            self.max_fanout = self.max_fanout.max(self.run_len as usize);
            let ratio = self.group.upload_kbps_at(self.run_parent) / f64::from(self.run_len);
            self.min_ratio = self.min_ratio.min(ratio);
        }
        self.run_len = 0;
    }

    /// Finishes the accumulation, returning the summary statistics and the
    /// bottleneck throughput in kbps (`f64::INFINITY` for a leaf-only run,
    /// exactly like `bottleneck_throughput_kbps` on a single-member tree).
    pub fn finish(mut self) -> (TreeStats, f64) {
        self.close_run();
        let stats = TreeStats {
            delivered: self.delivered,
            group_size: self.group.len(),
            depth: self.depth,
            avg_path_len: if self.delivered > 1 {
                self.total_hops as f64 / (self.delivered - 1) as f64
            } else {
                0.0
            },
            path_len_histogram: self.hist,
            internal_nodes: self.internal_nodes,
            avg_children_per_internal: if self.internal_nodes == 0 {
                0.0
            } else {
                self.total_children as f64 / self.internal_nodes as f64
            },
            max_fanout: self.max_fanout,
        };
        (stats, self.min_ratio)
    }
}

impl DeliverySink for StreamingTreeStats<'_> {
    fn deliver(&mut self, parent: usize, child: usize, hops: u32) -> bool {
        debug_assert!(parent < self.group.len() && child < self.group.len());
        if parent != self.run_parent {
            self.close_run();
            self.run_parent = parent;
        }
        self.run_len += 1;
        if self.hist.len() <= hops as usize {
            self.hist.resize(hops as usize + 1, 0);
        }
        self.hist[hops as usize] += 1;
        self.total_hops += u64::from(hops);
        self.depth = self.depth.max(hops);
        self.delivered += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Member;
    use cam_ring::{Id, IdSpace};

    fn group(n: usize) -> MemberSet {
        MemberSet::new(
            IdSpace::new(10),
            (0..n)
                .map(|i| Member {
                    id: Id(i as u64 * 7 + 1),
                    capacity: 3,
                    upload_kbps: 400.0 + i as f64 * 50.0,
                })
                .collect(),
        )
        .unwrap()
    }

    /// Replays the same delivery sequence into both sinks and demands exact
    /// equality of every statistic, f64 bits included.
    #[test]
    fn streaming_matches_materialized_exactly() {
        let g = group(6);
        // 0 → {1, 2, 3}; 1 → {4}; 4 → {5}: depth 3, mixed fanouts.
        let edges: [(usize, usize, u32); 5] =
            [(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 4, 2), (4, 5, 3)];
        let mut tree = MulticastTree::new(6, 0);
        let mut streaming = StreamingTreeStats::new(&g);
        for &(p, c, h) in &edges {
            assert!(DeliverySink::deliver(&mut tree, p, c, h));
            assert!(streaming.deliver(p, c, h));
        }
        let (stats, tput) = streaming.finish();
        assert_eq!(stats, tree.stats());
        assert_eq!(
            tput.to_bits(),
            tree.bottleneck_throughput_kbps(&g).to_bits()
        );
    }

    #[test]
    fn leaf_only_run_reports_infinite_throughput() {
        let g = group(3);
        let (stats, tput) = StreamingTreeStats::new(&g).finish();
        assert_eq!(stats, MulticastTree::new(3, 0).stats());
        assert_eq!(tput, f64::INFINITY);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.path_len_histogram, vec![1]);
    }

    #[test]
    fn tree_sink_suppresses_duplicates() {
        let mut tree = MulticastTree::new(3, 0);
        assert!(DeliverySink::deliver(&mut tree, 0, 1, 1));
        assert!(!DeliverySink::deliver(&mut tree, 0, 1, 1));
        assert_eq!(tree.delivered(), 2);
    }
}
