//! Byzantine adversary models and honest-node detection counters.
//!
//! The paper's resilience analysis assumes nodes fail *silently*; the
//! region-partition math that makes CAM capacity-aware is breakable by a
//! node that *lies*. This module defines the misbehaviors a planned
//! adversary can perform ([`ByzantineBehavior`]), the per-node state that
//! drives them deterministically from a seed ([`AdversaryState`]), and the
//! counters honest nodes bump when their built-in defenses flag suspected
//! misbehavior ([`DetectionCounters`]).
//!
//! Everything here is seed-driven: adversary decisions draw only from the
//! adversary's own [`SimRng`] stream, never from ambient host randomness,
//! so chaos-plan shrinking and replay bundles stay bit-identical.

use cam_ring::Segment;
use cam_sim::rng::SimRng;

use crate::Member;

/// The catalog of scripted misbehaviors a Byzantine node can perform.
///
/// Each behavior targets a different trust assumption of the protocol:
/// routing honesty (`Misroute`), forwarding completeness (`SelectiveDrop`),
/// capacity truthfulness (`ForgeCapacity`), at-most-once origination
/// (`Replay`), and membership-view freshness (`StaleIncarnation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByzantineBehavior {
    /// Forward multicast frames with rotated (wrong) sub-segments, so
    /// children receive responsibility regions that do not start at their
    /// own identifier.
    Misroute,
    /// Silently drop some child forwards, chosen per-child by the
    /// adversary's RNG, starving the corresponding subtrees.
    SelectiveDrop,
    /// Advertise a forged (inflated) capacity `c_x` so region partitioning
    /// over-splits around the adversary.
    ForgeCapacity,
    /// Re-send previously-seen multicast frames to random neighbors long
    /// after first delivery.
    Replay,
    /// Answer stabilize queries with a frozen (stale) snapshot of
    /// predecessor/successor state, advertising dead nodes as live.
    StaleIncarnation,
}

impl ByzantineBehavior {
    /// Every behavior kind, in canonical report order.
    pub const ALL: [ByzantineBehavior; 5] = [
        ByzantineBehavior::Misroute,
        ByzantineBehavior::SelectiveDrop,
        ByzantineBehavior::ForgeCapacity,
        ByzantineBehavior::Replay,
        ByzantineBehavior::StaleIncarnation,
    ];

    /// Stable snake_case name, used by trace events, bundles, and reports.
    pub fn name(self) -> &'static str {
        match self {
            ByzantineBehavior::Misroute => "misroute",
            ByzantineBehavior::SelectiveDrop => "selective_drop",
            ByzantineBehavior::ForgeCapacity => "forge_capacity",
            ByzantineBehavior::Replay => "replay",
            ByzantineBehavior::StaleIncarnation => "stale_incarnation",
        }
    }

    /// Parses a [`ByzantineBehavior::name`] back to the behavior.
    pub fn from_name(name: &str) -> Option<ByzantineBehavior> {
        ByzantineBehavior::ALL
            .into_iter()
            .find(|b| b.name() == name)
    }

    /// The detector (trace `adversary_detect` label and
    /// [`DetectionCounters`] field) this behavior is expected to trip.
    pub fn detector(self) -> &'static str {
        match self {
            ByzantineBehavior::Misroute => "region_violation",
            ByzantineBehavior::SelectiveDrop => "repair_recovery",
            ByzantineBehavior::ForgeCapacity => "capacity_forgery",
            ByzantineBehavior::Replay => "replay_suspect",
            ByzantineBehavior::StaleIncarnation => "stale_claim",
        }
    }
}

/// Counters honest nodes bump when their defenses flag suspected
/// misbehavior. Summed across a run they are the harness's evidence that
/// an adversary was *detected*, not merely tolerated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionCounters {
    /// Region-carrying multicast frames whose delegated segment did not
    /// start at this node's own identifier (misrouted forwards).
    pub region_violations: u64,
    /// Capacity claims that contradicted the first-observed (pinned)
    /// capacity for the same identifier.
    pub capacity_forgeries: u64,
    /// Duplicate region-carrying frames arriving from a sender other than
    /// the first-seen sender (replayed frames).
    pub replay_suspects: u64,
    /// Stabilize replies advertising members this node has itself
    /// confirmed dead (stale incarnations).
    pub stale_claims: u64,
    /// Payloads recovered via epidemic repair after the dissemination tree
    /// failed to deliver them (the observable footprint of dropped
    /// forwards). Unlike the other counters this is not an accusation:
    /// a repair can also win a benign race against a still-propagating
    /// multicast, so its honest baseline is near-zero, not zero.
    pub repair_recoveries: u64,
}

impl DetectionCounters {
    /// Sum of the *accusatory* counters — the ones that imply a specific
    /// peer lied. Exactly zero on any honest run over a lossless wire
    /// (the chaos harness's honest baseline); sustained packet loss can
    /// fabricate a confirmed-dead verdict for a live node, whose later
    /// honest sightings then count as stale claims.
    /// [`Self::repair_recoveries`] is excluded because benign repair
    /// races keep its honest baseline merely near-zero even without loss.
    pub fn suspicions(&self) -> u64 {
        self.region_violations
            + self.capacity_forgeries
            + self.replay_suspects
            + self.stale_claims
    }

    /// Sum of all counters — nonzero means *something* was flagged.
    pub fn total(&self) -> u64 {
        self.region_violations
            + self.capacity_forgeries
            + self.replay_suspects
            + self.stale_claims
            + self.repair_recoveries
    }

    /// The counter a given behavior is expected to trip — the canonical
    /// behavior→detector mapping used by regression tests and the
    /// robustness report.
    pub fn for_behavior(&self, behavior: ByzantineBehavior) -> u64 {
        match behavior {
            ByzantineBehavior::Misroute => self.region_violations,
            ByzantineBehavior::SelectiveDrop => self.repair_recoveries,
            ByzantineBehavior::ForgeCapacity => self.capacity_forgeries,
            ByzantineBehavior::Replay => self.replay_suspects,
            ByzantineBehavior::StaleIncarnation => self.stale_claims,
        }
    }

    /// Accumulates `other` into `self` (per-field saturating add).
    pub fn add(&mut self, other: &DetectionCounters) {
        self.region_violations = self
            .region_violations
            .saturating_add(other.region_violations);
        self.capacity_forgeries = self
            .capacity_forgeries
            .saturating_add(other.capacity_forgeries);
        self.replay_suspects = self.replay_suspects.saturating_add(other.replay_suspects);
        self.stale_claims = self.stale_claims.saturating_add(other.stale_claims);
        self.repair_recoveries = self
            .repair_recoveries
            .saturating_add(other.repair_recoveries);
    }
}

/// Upper bound on remembered frames for [`ByzantineBehavior::Replay`] —
/// enough variety to replay from, small enough to keep snapshots cheap.
const REPLAY_MEMORY: usize = 32;

/// Per-node adversary state: the scripted behavior plus the deterministic
/// RNG stream driving every decision it makes.
///
/// The state is attached to a [`crate::dynamic::DhtActor`] by the chaos
/// harness; the actor consults it at each decision point (multicast
/// forwarding, stabilize answering, capacity advertising). All randomness
/// comes from the embedded [`SimRng`], seeded by the fault plan, so a
/// replayed plan takes bit-identical adversarial decisions.
#[derive(Debug, Clone)]
pub struct AdversaryState {
    /// Which misbehavior this node performs.
    pub behavior: ByzantineBehavior,
    /// The adversary's private decision stream (from the plan seed).
    pub rng: SimRng,
    /// Frames seen by a [`ByzantineBehavior::Replay`] adversary, kept for
    /// later re-sending: `(payload, region, hops, data)`.
    pub remembered: Vec<(u64, Option<Segment>, u32, bytes::Bytes)>,
    /// The frozen `(predecessor, successors)` snapshot a
    /// [`ByzantineBehavior::StaleIncarnation`] adversary keeps answering
    /// with; captured lazily at its first stabilize query.
    pub frozen: Option<(Option<Member>, Vec<Member>)>,
    /// Number of misbehaviors actually performed (acts that differed from
    /// honest behavior) — the denominator for detection-rate accounting.
    pub acts: u64,
}

impl AdversaryState {
    /// Creates adversary state for `behavior`, seeding the private RNG
    /// stream from `seed` (derived by the chaos plan).
    pub fn new(behavior: ByzantineBehavior, seed: u64) -> Self {
        AdversaryState {
            behavior,
            rng: SimRng::new(seed).split(0xBAD),
            remembered: Vec::new(),
            frozen: None,
            acts: 0,
        }
    }

    /// Records a frame for later replay (keeps at most [`REPLAY_MEMORY`]).
    pub fn remember(
        &mut self,
        payload: u64,
        region: Option<Segment>,
        hops: u32,
        data: bytes::Bytes,
    ) {
        if self.remembered.len() < REPLAY_MEMORY {
            self.remembered.push((payload, region, hops, data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_names_round_trip() {
        for b in ByzantineBehavior::ALL {
            assert_eq!(ByzantineBehavior::from_name(b.name()), Some(b));
        }
        assert_eq!(ByzantineBehavior::from_name("honest"), None);
    }

    #[test]
    fn counters_total_and_add() {
        let mut a = DetectionCounters {
            region_violations: 1,
            capacity_forgeries: 2,
            replay_suspects: 3,
            stale_claims: 4,
            repair_recoveries: 5,
        };
        assert_eq!(a.total(), 15);
        let b = a;
        a.add(&b);
        assert_eq!(a.total(), 30);
        assert_eq!(a.region_violations, 2);
    }

    #[test]
    fn adversary_rng_is_seed_deterministic() {
        let mut a = AdversaryState::new(ByzantineBehavior::Misroute, 7);
        let mut b = AdversaryState::new(ByzantineBehavior::Misroute, 7);
        for _ in 0..16 {
            assert_eq!(a.rng.uniform_incl(0, 1000), b.rng.uniform_incl(0, 1000));
        }
        let mut c = AdversaryState::new(ByzantineBehavior::Misroute, 8);
        let same: Vec<u64> = (0..16).map(|_| c.rng.uniform_incl(0, 1000)).collect();
        let fresh: Vec<u64> = {
            let mut d = AdversaryState::new(ByzantineBehavior::Misroute, 7);
            (0..16).map(|_| d.rng.uniform_incl(0, 1000)).collect()
        };
        assert_ne!(same, fresh, "different seeds must diverge");
    }

    #[test]
    fn replay_memory_is_bounded() {
        let mut a = AdversaryState::new(ByzantineBehavior::Replay, 1);
        for p in 0..100u64 {
            a.remember(p, None, 1, bytes::Bytes::from_static(b"x"));
        }
        assert_eq!(a.remembered.len(), REPLAY_MEMORY);
    }
}
