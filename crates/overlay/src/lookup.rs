//! Results of routed lookups.

use std::fmt;

/// Outcome of routing a lookup through an overlay.
///
/// Produced by [`StaticOverlay::lookup`](crate::StaticOverlay::lookup); the
/// path records every member the request visited (starting with the origin,
/// ending with the node that *answered* — not necessarily the owner, which
/// may be the answerer's successor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// Member index of the node responsible for the key.
    pub owner: usize,
    /// Member indices visited, origin first.
    pub path: Vec<usize>,
}

impl LookupResult {
    /// Number of overlay hops the request traveled (path edges).
    #[inline]
    pub fn hops(&self) -> u32 {
        (self.path.len().saturating_sub(1)) as u32
    }
}

impl fmt::Display for LookupResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner #{} after {} hops", self.owner, self.hops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_counts_edges() {
        let r = LookupResult {
            owner: 9,
            path: vec![1, 4, 9],
        };
        assert_eq!(r.hops(), 2);
        let local = LookupResult {
            owner: 1,
            path: vec![1],
        };
        assert_eq!(local.hops(), 0);
        assert_eq!(local.to_string(), "owner #1 after 0 hops");
    }
}
