//! Group membership: hosts on the identifier ring.

use std::fmt;

use cam_ring::{Id, IdSpace};
use serde::{Deserialize, Serialize};

/// One member of the multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Member {
    /// Position on the identifier ring (unique within a group).
    pub id: Id,
    /// Capacity `c_x`: the maximum number of direct children this host is
    /// willing to forward multicast messages to (paper, Section 2). Made
    /// roughly proportional to upload bandwidth by the workload generator.
    pub capacity: u32,
    /// Upload bandwidth `B_x` in kbps; determines sustainable throughput.
    pub upload_kbps: f64,
}

impl Member {
    /// Convenience constructor for tests: capacity `c`, bandwidth `c × p`
    /// with `p = 100` kbps.
    pub fn with_capacity(id: Id, capacity: u32) -> Member {
        Member {
            id,
            capacity,
            upload_kbps: capacity as f64 * 100.0,
        }
    }
}

impl fmt::Display for Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "member(id={}, c={}, B={}kbps)",
            self.id, self.capacity, self.upload_kbps
        )
    }
}

/// Error returned by [`MemberSet::new`] when construction is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildMemberSetError {
    /// Two members mapped to the same identifier.
    DuplicateId(Id),
    /// The group was empty.
    Empty,
    /// A member's identifier does not fit in the identifier space.
    IdOutOfSpace(Id),
    /// A member declared capacity < 2 (no overlay in this workspace can use
    /// capacity 0 or 1 nodes as internal tree nodes, and CAM-Chord needs
    /// base ≥ 2 for its level arithmetic).
    CapacityTooSmall(Id, u32),
}

impl fmt::Display for BuildMemberSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMemberSetError::DuplicateId(id) => {
                write!(f, "duplicate member identifier {id}")
            }
            BuildMemberSetError::Empty => write!(f, "member set is empty"),
            BuildMemberSetError::IdOutOfSpace(id) => {
                write!(f, "identifier {id} outside the identifier space")
            }
            BuildMemberSetError::CapacityTooSmall(id, c) => {
                write!(f, "member {id} has capacity {c} < 2")
            }
        }
    }
}

impl std::error::Error for BuildMemberSetError {}

/// The multicast group, sorted by identifier.
///
/// Provides the ring-oracle queries every overlay needs when resolving its
/// neighbor tables: *owner* (the paper's `x̂` — the node responsible for an
/// identifier), *successor*, and *predecessor*.
///
/// # Memory layout (struct of arrays)
///
/// Members are stored as three parallel columns — `ids: Vec<u64>`,
/// `capacities: Vec<u32>`, `upload_kbps: Vec<f64>` — instead of one
/// `Vec<Member>`. Every resolution query touches *only* the identifier
/// column, so at n = 1M the hot working set is 8 MB of sorted `u64`s
/// rather than 24 MB of interleaved structs, and a bucket-index scan never
/// pulls capacities or bandwidths into cache. [`MemberSet::member`]
/// reassembles a [`Member`] by value (it is `Copy`) for callers that want
/// the row view; [`MemberSet::id_at`], [`MemberSet::capacity_at`] and
/// [`MemberSet::upload_kbps_at`] read single columns on hot paths.
///
/// Resolution is `O(1)` expected time: construction precomputes a bucket
/// index that maps the high bits of an identifier to the first member at or
/// past that bucket's start, so a query is one table lookup plus a short
/// forward scan (expected length ≤ 1 for hash-uniform identifiers, since
/// there are at least as many buckets as members). The original `O(log n)`
/// binary-search forms remain available as `*_binsearch` — the bench
/// harness and property tests compare the two.
///
/// # Example
///
/// ```
/// use cam_overlay::{Member, MemberSet};
/// use cam_ring::{Id, IdSpace};
///
/// let space = IdSpace::new(5);
/// let ids = [0u64, 4, 8, 13, 18, 21, 26, 29]; // the paper's Figure 2 ring
/// let members: Vec<Member> = ids
///     .iter()
///     .map(|&v| Member::with_capacity(Id(v), 3))
///     .collect();
/// let group = MemberSet::new(space, members)?;
///
/// // x̂ resolution: identifier 1 is owned by node 4 (its successor).
/// assert_eq!(group.member(group.owner_idx(Id(1))).id, Id(4));
/// // A node owns its own identifier.
/// assert_eq!(group.member(group.owner_idx(Id(13))).id, Id(13));
/// // Wrap-around: identifier 30 is owned by node 0.
/// assert_eq!(group.member(group.owner_idx(Id(30))).id, Id(0));
/// # Ok::<(), cam_overlay::peer::BuildMemberSetError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberSet {
    space: IdSpace,
    /// Sorted member identifiers — the only column resolution touches.
    ids: Vec<u64>,
    /// `capacities[i]` is the capacity of the member at `ids[i]`.
    capacities: Vec<u32>,
    /// `upload_kbps[i]` is the upload bandwidth of the member at `ids[i]`.
    upload_kbps: Vec<f64>,
    /// `buckets[b]` is the index of the first member whose identifier is
    /// `≥ b << bucket_shift`; a trailing sentinel entry equals `len()`.
    buckets: Vec<u32>,
    /// Identifier high-bits selecting a bucket: `bucket = id >> shift`.
    bucket_shift: u32,
}

impl MemberSet {
    /// Builds a group from members in any order.
    ///
    /// # Errors
    ///
    /// Returns an error if the group is empty, an identifier repeats or is
    /// out of space, or a capacity is below 2.
    pub fn new(space: IdSpace, mut members: Vec<Member>) -> Result<Self, BuildMemberSetError> {
        if members.is_empty() {
            return Err(BuildMemberSetError::Empty);
        }
        for m in &members {
            if !space.contains(m.id) {
                return Err(BuildMemberSetError::IdOutOfSpace(m.id));
            }
            if m.capacity < 2 {
                return Err(BuildMemberSetError::CapacityTooSmall(m.id, m.capacity));
            }
        }
        members.sort_by_key(|m| m.id);
        for w in members.windows(2) {
            if w[0].id == w[1].id {
                return Err(BuildMemberSetError::DuplicateId(w[0].id));
            }
        }
        Ok(MemberSet::from_sorted(space, members))
    }

    /// Builds the group plus its bucket index from already-sorted,
    /// already-validated members, splitting the rows into columns.
    fn from_sorted(space: IdSpace, members: Vec<Member>) -> MemberSet {
        let n = members.len();
        let mut ids = Vec::with_capacity(n);
        let mut capacities = Vec::with_capacity(n);
        let mut upload_kbps = Vec::with_capacity(n);
        for m in members {
            ids.push(m.id.value());
            capacities.push(m.capacity);
            upload_kbps.push(m.upload_kbps);
        }
        MemberSet::from_columns(space, ids, capacities, upload_kbps)
    }

    /// Assembles a group from already-sorted, already-validated columns.
    fn from_columns(
        space: IdSpace,
        ids: Vec<u64>,
        capacities: Vec<u32>,
        upload_kbps: Vec<f64>,
    ) -> MemberSet {
        let (buckets, bucket_shift) = Self::build_bucket_index(space, &ids);
        MemberSet {
            space,
            ids,
            capacities,
            upload_kbps,
            buckets,
            bucket_shift,
        }
    }

    /// Computes the bucket index: one bucket per `2^shift`-wide identifier
    /// span, at least as many buckets as members, so a resolution query
    /// scans at most the (expected ≤ 1) members sharing the key's bucket.
    fn build_bucket_index(space: IdSpace, ids: &[u64]) -> (Vec<u32>, u32) {
        let n = ids.len();
        // n ≤ space.size() because identifiers are unique, so the rounded-up
        // power of two never exceeds 2^bits and the shift never underflows.
        let bucket_count = n.next_power_of_two();
        let shift = space.bits() - bucket_count.trailing_zeros();
        let mut buckets = Vec::with_capacity(bucket_count + 1);
        let mut i = 0usize;
        for b in 0..bucket_count as u64 {
            let start = b << shift;
            while i < n && ids[i] < start {
                i += 1;
            }
            buckets.push(i as u32);
        }
        buckets.push(n as u32);
        (buckets, shift)
    }

    /// The identifier space the group lives in.
    #[inline]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the group is empty (never true: construction rejects it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The member at `idx`, assembled by value from the columns (members
    /// are sorted by identifier; `Member` is `Copy`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn member(&self, idx: usize) -> Member {
        Member {
            id: Id(self.ids[idx]),
            capacity: self.capacities[idx],
            upload_kbps: self.upload_kbps[idx],
        }
    }

    /// The identifier of the member at `idx` (single-column read).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn id_at(&self, idx: usize) -> Id {
        Id(self.ids[idx])
    }

    /// The capacity of the member at `idx` (single-column read).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn capacity_at(&self, idx: usize) -> u32 {
        self.capacities[idx]
    }

    /// The upload bandwidth (kbps) of the member at `idx` (single-column
    /// read).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn upload_kbps_at(&self, idx: usize) -> f64 {
        self.upload_kbps[idx]
    }

    /// Iterates over members in ring order, yielding [`Member`] by value.
    pub fn iter(&self) -> Members<'_> {
        Members {
            set: self,
            front: 0,
            back: self.len(),
        }
    }

    /// First member index `i` with `ids[i] ≥ k` (i.e. the partition point
    /// of `id < k`), via the bucket index: `O(1)` expected.
    #[inline]
    fn lower_bound(&self, k: Id) -> usize {
        let k = k.value();
        let mut i = self.buckets[(k >> self.bucket_shift) as usize] as usize;
        while i < self.ids.len() && self.ids[i] < k {
            i += 1;
        }
        i
    }

    /// Index of the *owner* of identifier `k` — the paper's `k̂`: the node
    /// whose identifier is `k`, or else `successor(k)`. `O(1)` expected.
    #[inline]
    pub fn owner_idx(&self, k: Id) -> usize {
        let i = self.lower_bound(k);
        if i == self.ids.len() {
            0
        } else {
            i
        }
    }

    /// Index of `successor(k)`: the first node strictly clockwise after
    /// identifier `k`. `O(1)` expected.
    #[inline]
    pub fn successor_idx(&self, k: Id) -> usize {
        let mut i = self.lower_bound(k);
        if i < self.ids.len() && self.ids[i] == k.value() {
            i += 1;
        }
        if i == self.ids.len() {
            0
        } else {
            i
        }
    }

    /// Index of `predecessor(k)`: the last node strictly counter-clockwise
    /// before identifier `k`. `O(1)` expected.
    #[inline]
    pub fn predecessor_idx(&self, k: Id) -> usize {
        let i = self.lower_bound(k);
        if i == 0 {
            self.ids.len() - 1
        } else {
            i - 1
        }
    }

    /// [`owner_idx`](Self::owner_idx) by `O(log n)` binary search, without
    /// the bucket index. Reference implementation for tests and benches.
    pub fn owner_idx_binsearch(&self, k: Id) -> usize {
        let i = self.ids.partition_point(|&id| id < k.value());
        if i == self.ids.len() {
            0
        } else {
            i
        }
    }

    /// [`successor_idx`](Self::successor_idx) by `O(log n)` binary search.
    pub fn successor_idx_binsearch(&self, k: Id) -> usize {
        let i = self.ids.partition_point(|&id| id <= k.value());
        if i == self.ids.len() {
            0
        } else {
            i
        }
    }

    /// [`predecessor_idx`](Self::predecessor_idx) by `O(log n)` binary
    /// search.
    pub fn predecessor_idx_binsearch(&self, k: Id) -> usize {
        let i = self.ids.partition_point(|&id| id < k.value());
        if i == 0 {
            self.ids.len() - 1
        } else {
            i - 1
        }
    }

    /// Index of the member with exactly identifier `id`, if present.
    pub fn index_of(&self, id: Id) -> Option<usize> {
        self.ids.binary_search(&id.value()).ok()
    }

    /// The next member clockwise after the member at `idx`.
    #[inline]
    pub fn next_idx(&self, idx: usize) -> usize {
        (idx + 1) % self.ids.len()
    }

    /// The previous member counter-clockwise before the member at `idx`.
    #[inline]
    pub fn prev_idx(&self, idx: usize) -> usize {
        (idx + self.ids.len() - 1) % self.ids.len()
    }

    /// A new group with `member` added (the receiver is unchanged).
    ///
    /// # Errors
    ///
    /// Returns an error if the identifier is already taken, out of space,
    /// or the capacity is below 2.
    pub fn inserted(&self, member: Member) -> Result<MemberSet, BuildMemberSetError> {
        if !self.space.contains(member.id) {
            return Err(BuildMemberSetError::IdOutOfSpace(member.id));
        }
        if member.capacity < 2 {
            return Err(BuildMemberSetError::CapacityTooSmall(
                member.id,
                member.capacity,
            ));
        }
        match self.ids.binary_search(&member.id.value()) {
            Ok(_) => Err(BuildMemberSetError::DuplicateId(member.id)),
            Err(pos) => {
                let mut ids = self.ids.clone();
                let mut capacities = self.capacities.clone();
                let mut upload_kbps = self.upload_kbps.clone();
                ids.insert(pos, member.id.value());
                capacities.insert(pos, member.capacity);
                upload_kbps.insert(pos, member.upload_kbps);
                Ok(MemberSet::from_columns(
                    self.space,
                    ids,
                    capacities,
                    upload_kbps,
                ))
            }
        }
    }

    /// A new group with the member at identifier `id` removed, or `None`
    /// if absent or if removal would empty the group.
    pub fn removed(&self, id: Id) -> Option<MemberSet> {
        if self.ids.len() <= 1 {
            return None;
        }
        let pos = self.ids.binary_search(&id.value()).ok()?;
        let mut ids = self.ids.clone();
        let mut capacities = self.capacities.clone();
        let mut upload_kbps = self.upload_kbps.clone();
        ids.remove(pos);
        capacities.remove(pos);
        upload_kbps.remove(pos);
        Some(MemberSet::from_columns(
            self.space,
            ids,
            capacities,
            upload_kbps,
        ))
    }

    /// Mean declared capacity of the group.
    pub fn mean_capacity(&self) -> f64 {
        self.capacities.iter().map(|&c| c as f64).sum::<f64>() / self.capacities.len() as f64
    }
}

/// Iterator over a [`MemberSet`] in ring order, yielding [`Member`] by
/// value (assembled from the columns; `Member` is `Copy`, so this is the
/// same cost as the former `.iter().copied()`).
#[derive(Debug, Clone)]
pub struct Members<'a> {
    set: &'a MemberSet,
    front: usize,
    back: usize,
}

impl Iterator for Members<'_> {
    type Item = Member;

    #[inline]
    fn next(&mut self) -> Option<Member> {
        if self.front == self.back {
            return None;
        }
        let m = self.set.member(self.front);
        self.front += 1;
        Some(m)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.back - self.front;
        (rem, Some(rem))
    }
}

impl DoubleEndedIterator for Members<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Member> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        Some(self.set.member(self.back))
    }
}

impl ExactSizeIterator for Members<'_> {}

impl<'a> IntoIterator for &'a MemberSet {
    type Item = Member;
    type IntoIter = Members<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_group() -> MemberSet {
        let space = IdSpace::new(5);
        let members = [0u64, 4, 8, 13, 18, 21, 26, 29]
            .iter()
            .map(|&v| Member::with_capacity(Id(v), 3))
            .collect();
        MemberSet::new(space, members).unwrap()
    }

    #[test]
    fn sorted_after_shuffled_input() {
        let space = IdSpace::new(5);
        let members = [21u64, 0, 29, 4, 26, 8, 18, 13]
            .iter()
            .map(|&v| Member::with_capacity(Id(v), 3))
            .collect();
        let g = MemberSet::new(space, members).unwrap();
        let ids: Vec<u64> = g.iter().map(|m| m.id.value()).collect();
        assert_eq!(ids, vec![0, 4, 8, 13, 18, 21, 26, 29]);
    }

    #[test]
    fn construction_errors() {
        let space = IdSpace::new(5);
        assert_eq!(
            MemberSet::new(space, vec![]).unwrap_err(),
            BuildMemberSetError::Empty
        );
        let dup = vec![
            Member::with_capacity(Id(3), 3),
            Member::with_capacity(Id(3), 4),
        ];
        assert_eq!(
            MemberSet::new(space, dup).unwrap_err(),
            BuildMemberSetError::DuplicateId(Id(3))
        );
        let out = vec![Member::with_capacity(Id(99), 3)];
        assert_eq!(
            MemberSet::new(space, out).unwrap_err(),
            BuildMemberSetError::IdOutOfSpace(Id(99))
        );
        let tiny = vec![Member::with_capacity(Id(1), 1)];
        assert_eq!(
            MemberSet::new(space, tiny).unwrap_err(),
            BuildMemberSetError::CapacityTooSmall(Id(1), 1)
        );
    }

    #[test]
    fn owner_successor_predecessor() {
        let g = fig2_group();
        // Owner includes the identifier itself.
        assert_eq!(g.member(g.owner_idx(Id(13))).id, Id(13));
        assert_eq!(g.member(g.owner_idx(Id(14))).id, Id(18));
        assert_eq!(g.member(g.owner_idx(Id(30))).id, Id(0), "wraps");
        assert_eq!(g.member(g.owner_idx(Id(0))).id, Id(0));
        // Successor is strictly after.
        assert_eq!(g.member(g.successor_idx(Id(13))).id, Id(18));
        assert_eq!(g.member(g.successor_idx(Id(29))).id, Id(0), "wraps");
        assert_eq!(g.member(g.successor_idx(Id(31))).id, Id(0));
        // Predecessor is strictly before.
        assert_eq!(g.member(g.predecessor_idx(Id(13))).id, Id(8));
        assert_eq!(g.member(g.predecessor_idx(Id(0))).id, Id(29), "wraps");
        assert_eq!(g.member(g.predecessor_idx(Id(14))).id, Id(13));
    }

    #[test]
    fn paper_fig2_hat_resolution() {
        // Section 3.1: x = 0, c_x = 3. x_{0,1}=1, x_{0,2}=2, x_{1,1}=3 all
        // resolve to node 4; x_{1,2}=6 → 8; x_{2,1}=9 → 13; x_{2,2}=18 → 18;
        // x_{3,1}=27 → 29.
        let g = fig2_group();
        for (ident, owner) in [
            (1u64, 4u64),
            (2, 4),
            (3, 4),
            (6, 8),
            (9, 13),
            (18, 18),
            (27, 29),
        ] {
            assert_eq!(
                g.member(g.owner_idx(Id(ident))).id,
                Id(owner),
                "x̂ of {ident}"
            );
        }
    }

    #[test]
    fn neighbors_in_ring_order() {
        let g = fig2_group();
        assert_eq!(g.next_idx(7), 0);
        assert_eq!(g.prev_idx(0), 7);
        assert_eq!(g.index_of(Id(21)), Some(5));
        assert_eq!(g.index_of(Id(22)), None);
        assert!((g.mean_capacity() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn column_accessors_match_member_view() {
        let g = fig2_group();
        for i in 0..g.len() {
            let m = g.member(i);
            assert_eq!(g.id_at(i), m.id);
            assert_eq!(g.capacity_at(i), m.capacity);
            assert_eq!(g.upload_kbps_at(i), m.upload_kbps);
        }
    }

    #[test]
    fn iterator_is_exact_and_double_ended() {
        let g = fig2_group();
        assert_eq!(g.iter().len(), 8);
        let fwd: Vec<u64> = g.iter().map(|m| m.id.value()).collect();
        let mut rev: Vec<u64> = g.iter().rev().map(|m| m.id.value()).collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        // IntoIterator for &MemberSet yields the same sequence.
        let via_ref: Vec<u64> = (&g).into_iter().map(|m| m.id.value()).collect();
        assert_eq!(fwd, via_ref);
    }

    #[test]
    fn incremental_insert_remove() {
        let g = fig2_group();
        let added = g.inserted(Member::with_capacity(Id(15), 5)).unwrap();
        assert_eq!(added.len(), 9);
        assert_eq!(added.member(added.owner_idx(Id(14))).id, Id(15));
        assert_eq!(g.len(), 8, "original untouched");
        // Duplicate rejected.
        assert!(matches!(
            added.inserted(Member::with_capacity(Id(15), 5)),
            Err(BuildMemberSetError::DuplicateId(_))
        ));
        // Removal restores the owner mapping.
        let removed = added.removed(Id(15)).unwrap();
        assert_eq!(removed.member(removed.owner_idx(Id(14))).id, Id(18));
        assert!(removed.removed(Id(999)).is_none(), "absent id");
        // Cannot empty a group.
        let single =
            MemberSet::new(IdSpace::new(5), vec![Member::with_capacity(Id(3), 4)]).unwrap();
        assert!(single.removed(Id(3)).is_none());
    }

    #[test]
    fn single_member_group() {
        let space = IdSpace::new(5);
        let g = MemberSet::new(space, vec![Member::with_capacity(Id(7), 4)]).unwrap();
        assert_eq!(g.owner_idx(Id(0)), 0);
        assert_eq!(g.successor_idx(Id(7)), 0);
        assert_eq!(g.predecessor_idx(Id(7)), 0);
        assert_eq!(g.next_idx(0), 0);
    }
}
