#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Shared substrate for structured-overlay multicast systems.
//!
//! Everything the four protocols (Chord, Koorde, CAM-Chord, CAM-Koorde)
//! have in common lives here:
//!
//! * [`Member`] / [`MemberSet`] — the multicast group: hosts with
//!   identifiers, capacities, and upload bandwidths, sorted on the ring.
//!   `MemberSet` answers *oracle* questions (`successor`, `predecessor`,
//!   `owner of identifier k`) by binary search; the static overlays resolve
//!   their neighbor tables against it, and tests use it as ground truth for
//!   lookup correctness.
//! * [`MulticastTree`] — the implicit dissemination tree extracted from a
//!   multicast run, with exactly-once bookkeeping and statistics (path
//!   lengths, fan-outs, depth).
//! * [`LookupResult`] — the outcome of a routed lookup (owner + hop path).
//! * [`StaticOverlay`] — the trait every protocol implements for the
//!   large-scale (100k-node) experiments: routing tables computed directly
//!   from full membership, exactly what a converged maintenance protocol
//!   would produce.
//! * [`dynamic`] — a message-level DHT node actor running on
//!   [`cam_sim`]: join, periodic stabilization, successor lists, failure
//!   detection, and multicast over the live overlay. Protocols plug in via
//!   [`dynamic::DhtProtocol`]. This is what backs the churn/resilience
//!   experiments ("resilient" in the paper's title).

pub mod adversary;
pub mod dynamic;
pub mod lookup;
pub mod peer;
pub mod stream;
pub mod tree;

pub use adversary::{AdversaryState, ByzantineBehavior, DetectionCounters};
pub use lookup::LookupResult;
pub use peer::{Member, MemberSet, Members};
pub use stream::{DeliverySink, StreamingTreeStats};
pub use tree::{MulticastTree, TreeStats};

use cam_ring::Id;

/// A fully resolved overlay built from complete membership knowledge.
///
/// This is the state a correct maintenance protocol converges to; computing
/// it directly makes 100,000-node experiments (the paper's default group
/// size) tractable. Implementations exist for Chord, Koorde, CAM-Chord and
/// CAM-Koorde.
///
/// `Send + Sync` is required so the experiment harness can fan one resolved
/// overlay out to a worker pool (overlays are immutable once built; all
/// implementations are plain data).
pub trait StaticOverlay: Send + Sync {
    /// The group this overlay interconnects.
    fn members(&self) -> &MemberSet;

    /// Routes a lookup for `key` starting at member index `origin`,
    /// returning the owner (the member responsible for `key`) and the hop
    /// path taken.
    fn lookup(&self, origin: usize, key: Id) -> LookupResult;

    /// Runs the protocol's multicast routine from member index `source`,
    /// returning the implicit dissemination tree.
    fn multicast_tree(&self, source: usize) -> MulticastTree;

    /// Runs the multicast from `source` and returns only the summary
    /// statistics plus the bottleneck throughput in kbps.
    ///
    /// The default materializes the tree and summarizes it; protocols with
    /// a streaming driver (CAM-Chord) override this to compute the same
    /// numbers in `O(depth)` memory via [`StreamingTreeStats`]. Overrides
    /// must stay **bit-identical** to this default — the sweep harness
    /// treats the two paths as interchangeable, and the parity tests
    /// compare them exactly.
    fn multicast_stats(&self, source: usize) -> (TreeStats, f64) {
        let tree = self.multicast_tree(source);
        let throughput = tree.bottleneck_throughput_kbps(self.members());
        (tree.stats(), throughput)
    }

    /// Number of distinct overlay neighbors (routing-table entries) of a
    /// member — the maintenance cost the paper compares in Section 2.
    fn neighbor_count(&self, member: usize) -> usize;

    /// Human-readable protocol name for reports.
    fn name(&self) -> &'static str;
}
