//! Implicit multicast trees and their statistics.
//!
//! No overlay in this workspace builds an explicit tree data structure at
//! protocol level — the tree *emerges* from the recursive multicast
//! routines. [`MulticastTree`] is the record of one dissemination run: who
//! delivered to whom, at what hop distance. The experiment harness reads
//! throughput (bottleneck fan-out) and latency (path-length distribution)
//! off this record.

use std::fmt;
use std::sync::OnceLock;

use crate::MemberSet;

/// Sentinel for "no parent" / "not reached" in the flat arrays.
const NONE: u32 = u32::MAX;

/// Compressed-sparse-row children lists: member `m`'s children are
/// `children[offsets[m]..offsets[m + 1]]`, in delivery order.
#[derive(Debug, Clone)]
struct Csr {
    offsets: Vec<u32>,
    children: Vec<usize>,
}

/// The implicit dissemination tree of one multicast, over member indices.
///
/// Stored as flat arrays (`u32` with a sentinel instead of
/// `Vec<Option<usize>>`, a delivery log instead of per-member child
/// vectors), so building a tree performs a constant number of allocations
/// regardless of shape. Children lists are materialized lazily into a
/// CSR layout the first time [`children_of`](Self::children_of) is called.
#[derive(Debug, Clone)]
pub struct MulticastTree {
    source: usize,
    /// `parent[m]` = delivering member, or [`NONE`].
    parent: Vec<u32>,
    /// `hops[m]` = distance from the source, or [`NONE`] when unreached.
    hops: Vec<u32>,
    /// `fanout[m]` = number of direct children of `m`.
    fanout: Vec<u32>,
    /// `(parent, child)` pairs in delivery order.
    deliveries: Vec<(u32, u32)>,
    /// Lazily-built children lists; replaced with a fresh cell on mutation.
    children: OnceLock<Csr>,
    delivered: usize,
}

impl MulticastTree {
    /// Starts a tree for a group of `n` members rooted at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n` or `n == 0`.
    pub fn new(n: usize, source: usize) -> Self {
        assert!(n > 0, "empty group");
        assert!(source < n, "source out of range");
        assert!(n < NONE as usize, "group too large for u32 indices");
        let mut hops = vec![NONE; n];
        hops[source] = 0;
        MulticastTree {
            source,
            parent: vec![NONE; n],
            hops,
            fanout: vec![0; n],
            deliveries: Vec::new(),
            children: OnceLock::new(),
            delivered: 1,
        }
    }

    /// Records that `parent` forwarded the message to `child`.
    ///
    /// Returns `false` (and records nothing) if `child` already received the
    /// message — callers that must guarantee exactly-once semantics (the
    /// CAM-Chord region partition) should treat `false` as a protocol error,
    /// while flooding protocols (CAM-Koorde) use it as duplicate
    /// suppression.
    ///
    /// # Panics
    ///
    /// Panics if `parent` has not itself received the message, if indices
    /// are out of range, or on a self-loop.
    pub fn deliver(&mut self, parent: usize, child: usize) -> bool {
        assert_ne!(parent, child, "self-loop delivery");
        let parent_hops = self.hops[parent];
        assert_ne!(parent_hops, NONE, "parent has not received the message");
        if self.hops[child] != NONE {
            return false;
        }
        self.hops[child] = parent_hops + 1;
        self.parent[child] = parent as u32;
        self.fanout[parent] += 1;
        self.deliveries.push((parent as u32, child as u32));
        if self.children.get().is_some() {
            self.children = OnceLock::new();
        }
        self.delivered += 1;
        true
    }

    /// The children CSR, built on first use from the delivery log.
    ///
    /// A counting sort over `deliveries` groups children by parent while
    /// keeping each parent's children in delivery order (the log is already
    /// in delivery order, and placement below is stable).
    fn csr(&self) -> &Csr {
        self.children.get_or_init(|| {
            let n = self.parent.len();
            let mut offsets = Vec::with_capacity(n + 1);
            let mut acc = 0u32;
            offsets.push(0);
            for &f in &self.fanout {
                acc += f;
                offsets.push(acc);
            }
            let mut next = offsets.clone();
            let mut children = vec![0usize; self.deliveries.len()];
            for &(p, c) in &self.deliveries {
                let slot = &mut next[p as usize];
                children[*slot as usize] = c as usize;
                *slot += 1;
            }
            Csr { offsets, children }
        })
    }

    /// The root of the tree.
    #[inline]
    pub fn source(&self) -> usize {
        self.source
    }

    /// Group size (delivered or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the group is empty (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// How many members received the message (including the source).
    #[inline]
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Whether every member received the message.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.delivered == self.parent.len()
    }

    /// Hop distance from the source to `member`, if it was reached.
    #[inline]
    pub fn hops_to(&self, member: usize) -> Option<u32> {
        match self.hops[member] {
            NONE => None,
            h => Some(h),
        }
    }

    /// The member that delivered to `member` (`None` for the source and for
    /// unreached members).
    #[inline]
    pub fn parent_of(&self, member: usize) -> Option<usize> {
        match self.parent[member] {
            NONE => None,
            p => Some(p as usize),
        }
    }

    /// Direct children of `member` in the tree, in delivery order.
    #[inline]
    pub fn children_of(&self, member: usize) -> &[usize] {
        let csr = self.csr();
        &csr.children[csr.offsets[member] as usize..csr.offsets[member + 1] as usize]
    }

    /// Number of direct children (the member's multicast out-degree).
    #[inline]
    pub fn fanout(&self, member: usize) -> usize {
        self.fanout[member] as usize
    }

    /// Children lists for the whole group — the input shape expected by
    /// `cam_sim::bandwidth::simulate_stream`.
    pub fn children_vec(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = self
            .fanout
            .iter()
            .map(|&f| Vec::with_capacity(f as usize))
            .collect();
        for &(p, c) in &self.deliveries {
            out[p as usize].push(c as usize);
        }
        out
    }

    /// Computes summary statistics of the tree.
    pub fn stats(&self) -> TreeStats {
        let mut hist: Vec<u64> = Vec::new();
        let mut total_hops = 0u64;
        let mut max_depth = 0u32;
        for h in self.hops.iter().copied().filter(|&h| h != NONE) {
            if hist.len() <= h as usize {
                hist.resize(h as usize + 1, 0);
            }
            hist[h as usize] += 1;
            total_hops += u64::from(h);
            max_depth = max_depth.max(h);
        }
        let internal: Vec<usize> = (0..self.len()).filter(|&m| self.fanout(m) > 0).collect();
        let total_children: usize = internal.iter().map(|&m| self.fanout(m)).sum();
        TreeStats {
            delivered: self.delivered,
            group_size: self.len(),
            depth: max_depth,
            // Average over receivers (source's 0 excluded from numerator and
            // denominator — the paper measures source-to-member paths).
            avg_path_len: if self.delivered > 1 {
                total_hops as f64 / (self.delivered - 1) as f64
            } else {
                0.0
            },
            path_len_histogram: hist,
            internal_nodes: internal.len(),
            avg_children_per_internal: if internal.is_empty() {
                0.0
            } else {
                total_children as f64 / internal.len() as f64
            },
            max_fanout: (0..self.len()).map(|m| self.fanout(m)).max().unwrap_or(0),
        }
    }

    /// The sustainable multicast throughput of this tree under the paper's
    /// model: `min` over internal nodes of `B_x / d_x` (kbps).
    ///
    /// Returns `f64::INFINITY` for a single-member tree.
    ///
    /// # Panics
    ///
    /// Panics if `group` has a different size than the tree.
    pub fn bottleneck_throughput_kbps(&self, group: &MemberSet) -> f64 {
        assert_eq!(group.len(), self.len(), "group/tree size mismatch");
        let mut min = f64::INFINITY;
        for m in 0..self.len() {
            let d = self.fanout(m);
            if d > 0 {
                min = min.min(group.member(m).upload_kbps / d as f64);
            }
        }
        min
    }

    /// Verifies structural invariants; returns a description of the first
    /// violation, if any. Intended for tests and debug assertions.
    pub fn check_invariants(&self, group: &MemberSet) -> Result<(), String> {
        if group.len() != self.len() {
            return Err("group/tree size mismatch".into());
        }
        for m in 0..self.len() {
            match (self.hops_to(m), self.parent_of(m)) {
                (Some(0), None) if m == self.source => {}
                (Some(0), _) => return Err(format!("non-source member {m} at hop 0")),
                (Some(h), Some(p)) => {
                    let ph = self
                        .hops_to(p)
                        .ok_or_else(|| format!("parent {p} unreached"))?;
                    if ph + 1 != h {
                        return Err(format!("hop mismatch at {m}: {h} != {ph}+1"));
                    }
                    if !self.children_of(p).contains(&m) {
                        return Err(format!("child link missing {p}→{m}"));
                    }
                }
                (Some(_), None) => return Err(format!("reached member {m} has no parent")),
                (None, Some(_)) => return Err(format!("unreached member {m} has a parent")),
                (None, None) => {}
            }
            let d = self.fanout(m);
            let c = group.member(m).capacity as usize;
            if d > c {
                return Err(format!("member {m} exceeds capacity: {d} children > c={c}"));
            }
        }
        Ok(())
    }
}

/// Summary statistics of a [`MulticastTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Members that received the message (including the source).
    pub delivered: usize,
    /// Total group size.
    pub group_size: usize,
    /// Maximum hop distance from the source.
    pub depth: u32,
    /// Mean hop distance over all receivers (source excluded).
    pub avg_path_len: f64,
    /// `path_len_histogram[h]` = number of members at hop distance `h`
    /// (the paper's Figures 9 and 10).
    pub path_len_histogram: Vec<u64>,
    /// Number of non-leaf members.
    pub internal_nodes: usize,
    /// Mean number of children per non-leaf member (the paper's Figure 6
    /// x-axis).
    pub avg_children_per_internal: f64,
    /// Largest fan-out in the tree.
    pub max_fanout: usize,
}

impl fmt::Display for TreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered {}/{} depth {} avg-path {:.2} avg-children {:.2}",
            self.delivered,
            self.group_size,
            self.depth,
            self.avg_path_len,
            self.avg_children_per_internal
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Member;
    use cam_ring::{Id, IdSpace};

    fn group(n: usize) -> MemberSet {
        let space = IdSpace::new(10);
        MemberSet::new(
            space,
            (0..n)
                .map(|i| Member::with_capacity(Id(i as u64 * 7 + 1), 3))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn build_and_stats() {
        // 0 → {1, 2}; 1 → {3}
        let mut t = MulticastTree::new(4, 0);
        assert!(t.deliver(0, 1));
        assert!(t.deliver(0, 2));
        assert!(t.deliver(1, 3));
        assert!(t.is_complete());
        let s = t.stats();
        assert_eq!(s.depth, 2);
        assert_eq!(s.path_len_histogram, vec![1, 2, 1]);
        assert!((s.avg_path_len - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.internal_nodes, 2);
        assert!((s.avg_children_per_internal - 1.5).abs() < 1e-12);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(t.fanout(0), 2);
        assert_eq!(t.parent_of(3), Some(1));
        assert_eq!(t.hops_to(3), Some(2));
        assert_eq!(t.children_of(0), &[1, 2]);
        t.check_invariants(&group(4)).unwrap();
    }

    #[test]
    fn duplicate_delivery_suppressed() {
        let mut t = MulticastTree::new(3, 0);
        assert!(t.deliver(0, 1));
        assert!(!t.deliver(0, 1), "second delivery reports duplicate");
        assert!(!t.deliver(1, 0), "source counts as already-received");
        assert_eq!(t.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "parent has not received")]
    fn orphan_parent_rejected() {
        let mut t = MulticastTree::new(3, 0);
        t.deliver(1, 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = MulticastTree::new(3, 0);
        t.deliver(0, 0);
    }

    #[test]
    fn bottleneck_throughput() {
        let space = IdSpace::new(10);
        let members = vec![
            Member {
                id: Id(1),
                capacity: 2,
                upload_kbps: 1000.0,
            },
            Member {
                id: Id(2),
                capacity: 2,
                upload_kbps: 400.0,
            },
            Member {
                id: Id(3),
                capacity: 2,
                upload_kbps: 900.0,
            },
            Member {
                id: Id(4),
                capacity: 2,
                upload_kbps: 800.0,
            },
        ];
        let g = MemberSet::new(space, members).unwrap();
        let mut t = MulticastTree::new(4, 0);
        t.deliver(0, 1); // node id=1 (idx 0) sends to idx 1
        t.deliver(0, 2);
        t.deliver(1, 3); // idx1 (B=400) has 1 child → 400
                         // idx0: 1000/2 = 500; idx1: 400/1 = 400 → bottleneck 400.
        assert_eq!(t.bottleneck_throughput_kbps(&g), 400.0);
        t.check_invariants(&g).unwrap();
    }

    #[test]
    fn capacity_violation_detected() {
        let g = group(5);
        let mut t = MulticastTree::new(5, 0);
        for c in 1..5 {
            t.deliver(0, c); // 4 children but capacity is 3
        }
        let err = t.check_invariants(&g).unwrap_err();
        assert!(err.contains("exceeds capacity"), "{err}");
    }

    #[test]
    fn incomplete_tree_reported() {
        let t = MulticastTree::new(5, 2);
        assert!(!t.is_complete());
        assert_eq!(t.delivered(), 1);
        let s = t.stats();
        assert_eq!(s.avg_path_len, 0.0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.internal_nodes, 0);
        assert_eq!(s.avg_children_per_internal, 0.0);
    }

    #[test]
    fn single_member_tree() {
        let t = MulticastTree::new(1, 0);
        assert!(t.is_complete());
        let g = MemberSet::new(IdSpace::new(5), vec![Member::with_capacity(Id(3), 2)]).unwrap();
        assert_eq!(t.bottleneck_throughput_kbps(&g), f64::INFINITY);
    }
}
