//! Poisson churn traces for the dynamic-membership experiments.

use cam_overlay::Member;
use cam_ring::Id;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// A new member joins.
    Join(Member),
    /// An existing member leaves gracefully.
    Leave(Id),
    /// An existing member crashes without notice.
    Crash(Id),
}

/// One timed event of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Virtual time of the event, in microseconds.
    pub at_micros: u64,
    /// The membership change.
    pub kind: ChurnKind,
}

/// A deterministic churn trace: exponential inter-arrival times, uniform
/// choice between joins and departures, crash probability among
/// departures.
///
/// # Example
///
/// ```
/// use cam_workload::ChurnTrace;
/// use cam_overlay::Member;
/// use cam_ring::{Id, IdSpace};
///
/// let initial: Vec<Member> = (0..50u64)
///     .map(|i| Member::with_capacity(Id(i * 100 + 1), 6))
///     .collect();
/// let trace = ChurnTrace::generate(
///     IdSpace::new(19),
///     &initial,
///     /* events */ 40,
///     /* mean gap */ 200_000.0,
///     /* crash fraction */ 0.5,
///     /* seed */ 7,
/// );
/// assert_eq!(trace.events.len(), 40);
/// // Timestamps are non-decreasing.
/// assert!(trace.events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Events in time order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Generates `events` churn events against an initial population.
    ///
    /// Joins and departures are equally likely (keeping the expected group
    /// size stable); `crash_fraction` of departures are crashes. Joining
    /// members get fresh identifiers and capacities uniform in `[4..10]`
    /// with the paper's bandwidth range.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, `mean_gap_micros <= 0`, or
    /// `crash_fraction ∉ [0, 1]`.
    pub fn generate(
        space: cam_ring::IdSpace,
        initial: &[Member],
        events: usize,
        mean_gap_micros: f64,
        crash_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "empty initial population");
        assert!(mean_gap_micros > 0.0, "non-positive mean gap");
        assert!(
            (0.0..=1.0).contains(&crash_fraction),
            "crash fraction {crash_fraction} out of range"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut present: Vec<Member> = initial.to_vec();
        let mut taken: std::collections::HashSet<u64> =
            initial.iter().map(|m| m.id.value()).collect();
        let mut t = 0u64;
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += (-mean_gap_micros * u.ln()).max(1.0) as u64;
            // Keep at least 2 members present.
            let join = present.len() < 3 || rng.gen_bool(0.5);
            if join {
                let id = loop {
                    let v = rng.gen_range(0..space.size());
                    if taken.insert(v) {
                        break Id(v);
                    }
                };
                let upload_kbps = rng.gen_range(400.0..=1000.0);
                let member = Member {
                    id,
                    capacity: rng.gen_range(4..=10),
                    upload_kbps,
                };
                present.push(member);
                out.push(ChurnEvent {
                    at_micros: t,
                    kind: ChurnKind::Join(member),
                });
            } else {
                let idx = rng.gen_range(0..present.len());
                let victim = present.swap_remove(idx);
                let kind = if rng.gen_bool(crash_fraction) {
                    ChurnKind::Crash(victim.id)
                } else {
                    ChurnKind::Leave(victim.id)
                };
                out.push(ChurnEvent { at_micros: t, kind });
            }
        }
        ChurnTrace { events: out }
    }

    /// Number of join events.
    pub fn joins(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ChurnKind::Join(_)))
            .count()
    }

    /// Number of leave + crash events.
    pub fn departures(&self) -> usize {
        self.events.len() - self.joins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_ring::IdSpace;

    fn initial(n: u64) -> Vec<Member> {
        (0..n)
            .map(|i| Member::with_capacity(Id(i * 97 + 5), 6))
            .collect()
    }

    #[test]
    fn deterministic() {
        let space = IdSpace::new(19);
        let init = initial(100);
        let a = ChurnTrace::generate(space, &init, 200, 1e5, 0.5, 3);
        let b = ChurnTrace::generate(space, &init, 200, 1e5, 0.5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn joins_and_departures_roughly_balanced() {
        let space = IdSpace::new(19);
        let trace = ChurnTrace::generate(space, &initial(500), 1000, 1e5, 0.3, 11);
        let joins = trace.joins();
        assert!((350..=650).contains(&joins), "joins {joins}");
        assert_eq!(trace.departures(), 1000 - joins);
    }

    #[test]
    fn fresh_ids_never_collide() {
        let space = IdSpace::new(19);
        let init = initial(50);
        let trace = ChurnTrace::generate(space, &init, 500, 1e4, 0.0, 13);
        let mut seen: std::collections::HashSet<u64> =
            init.iter().map(|m| m.id.value()).collect();
        for e in &trace.events {
            if let ChurnKind::Join(m) = e.kind {
                assert!(seen.insert(m.id.value()), "duplicate id {}", m.id);
            }
        }
    }

    #[test]
    fn crash_fraction_extremes() {
        let space = IdSpace::new(19);
        let all_crash = ChurnTrace::generate(space, &initial(100), 300, 1e4, 1.0, 5);
        assert!(all_crash
            .events
            .iter()
            .all(|e| !matches!(e.kind, ChurnKind::Leave(_))));
        let no_crash = ChurnTrace::generate(space, &initial(100), 300, 1e4, 0.0, 5);
        assert!(no_crash
            .events
            .iter()
            .all(|e| !matches!(e.kind, ChurnKind::Crash(_))));
    }

    #[test]
    #[should_panic(expected = "empty initial population")]
    fn empty_initial_rejected() {
        ChurnTrace::generate(IdSpace::new(10), &[], 10, 1e4, 0.5, 1);
    }
}
