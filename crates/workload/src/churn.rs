//! Poisson churn traces for the dynamic-membership experiments.

use cam_overlay::Member;
use cam_ring::Id;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::scenario::{BandwidthDist, CapacityAssignment};

/// What happens at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// A new member joins.
    Join(Member),
    /// An existing member leaves gracefully.
    Leave(Id),
    /// An existing member crashes without notice.
    Crash(Id),
}

/// One timed event of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Virtual time of the event, in microseconds.
    pub at_micros: u64,
    /// The membership change.
    pub kind: ChurnKind,
}

/// A deterministic churn trace: exponential inter-arrival times, uniform
/// choice between joins and departures, crash probability among
/// departures.
///
/// # Example
///
/// ```
/// use cam_workload::ChurnTrace;
/// use cam_overlay::Member;
/// use cam_ring::{Id, IdSpace};
///
/// let initial: Vec<Member> = (0..50u64)
///     .map(|i| Member::with_capacity(Id(i * 100 + 1), 6))
///     .collect();
/// let trace = ChurnTrace::generate(
///     IdSpace::new(19),
///     &initial,
///     /* events */ 40,
///     /* mean gap */ 200_000.0,
///     /* crash fraction */ 0.5,
///     /* seed */ 7,
/// );
/// assert_eq!(trace.events.len(), 40);
/// // Timestamps are non-decreasing.
/// assert!(trace.events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Events in time order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Generates `events` churn events against an initial population,
    /// with the paper's default workload for joiners (`B ∈ U[400,1000]`
    /// kbps, `c ∈ U[4..10]`). See [`ChurnTrace::generate_with`] to plumb
    /// a scenario's configured distributions through instead.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, `mean_gap_micros <= 0`, or
    /// `crash_fraction ∉ [0, 1]`.
    pub fn generate(
        space: cam_ring::IdSpace,
        initial: &[Member],
        events: usize,
        mean_gap_micros: f64,
        crash_fraction: f64,
        seed: u64,
    ) -> Self {
        Self::generate_with(
            space,
            initial,
            events,
            mean_gap_micros,
            crash_fraction,
            seed,
            &BandwidthDist::PAPER,
            &CapacityAssignment::PAPER,
        )
    }

    /// Generates `events` churn events whose joining members draw their
    /// bandwidth from `bandwidth` and their capacity from `capacity` —
    /// the same rules the scenario generator applies to the initial
    /// population, so churn does not silently skew the workload.
    ///
    /// Joins and departures are equally likely (keeping the expected group
    /// size stable); `crash_fraction` of departures are crashes. A
    /// departed member's identifier becomes available for reuse, exactly
    /// like a rejoining host in a deployment.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, `mean_gap_micros <= 0`,
    /// `crash_fraction ∉ [0, 1]`, or every identifier in `space` is
    /// simultaneously present when a join fires.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_with(
        space: cam_ring::IdSpace,
        initial: &[Member],
        events: usize,
        mean_gap_micros: f64,
        crash_fraction: f64,
        seed: u64,
        bandwidth: &BandwidthDist,
        capacity: &CapacityAssignment,
    ) -> Self {
        assert!(!initial.is_empty(), "empty initial population");
        assert!(mean_gap_micros > 0.0, "non-positive mean gap");
        assert!(
            (0.0..=1.0).contains(&crash_fraction),
            "crash fraction {crash_fraction} out of range"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut present: Vec<Member> = initial.to_vec();
        // Identifiers currently in use; departures release theirs below,
        // so long traces in small identifier spaces cannot exhaust it.
        let mut taken: std::collections::HashSet<u64> =
            initial.iter().map(|m| m.id.value()).collect();
        let mut t = 0u64;
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += (-mean_gap_micros * u.ln()).max(1.0) as u64;
            // Keep at least 2 members present.
            let join = present.len() < 3 || rng.gen_bool(0.5);
            if join {
                assert!(
                    (taken.len() as u64) < space.size(),
                    "identifier space exhausted: every id is present"
                );
                let id = loop {
                    let v = rng.gen_range(0..space.size());
                    if taken.insert(v) {
                        break Id(v);
                    }
                };
                let upload_kbps = bandwidth.sample(&mut rng);
                let member = Member {
                    id,
                    capacity: capacity.assign(upload_kbps, &mut rng),
                    upload_kbps,
                };
                present.push(member);
                out.push(ChurnEvent {
                    at_micros: t,
                    kind: ChurnKind::Join(member),
                });
            } else {
                let idx = rng.gen_range(0..present.len());
                let victim = present.swap_remove(idx);
                taken.remove(&victim.id.value());
                let kind = if rng.gen_bool(crash_fraction) {
                    ChurnKind::Crash(victim.id)
                } else {
                    ChurnKind::Leave(victim.id)
                };
                out.push(ChurnEvent { at_micros: t, kind });
            }
        }
        ChurnTrace { events: out }
    }

    /// Number of join events.
    pub fn joins(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ChurnKind::Join(_)))
            .count()
    }

    /// Number of leave + crash events.
    pub fn departures(&self) -> usize {
        self.events.len() - self.joins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_ring::IdSpace;

    fn initial(n: u64) -> Vec<Member> {
        (0..n)
            .map(|i| Member::with_capacity(Id(i * 97 + 5), 6))
            .collect()
    }

    #[test]
    fn deterministic() {
        let space = IdSpace::new(19);
        let init = initial(100);
        let a = ChurnTrace::generate(space, &init, 200, 1e5, 0.5, 3);
        let b = ChurnTrace::generate(space, &init, 200, 1e5, 0.5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn joins_and_departures_roughly_balanced() {
        let space = IdSpace::new(19);
        let trace = ChurnTrace::generate(space, &initial(500), 1000, 1e5, 0.3, 11);
        let joins = trace.joins();
        assert!((350..=650).contains(&joins), "joins {joins}");
        assert_eq!(trace.departures(), 1000 - joins);
    }

    #[test]
    fn concurrently_present_ids_never_collide() {
        let space = IdSpace::new(19);
        let init = initial(50);
        let trace = ChurnTrace::generate(space, &init, 500, 1e4, 0.0, 13);
        // Replay the trace: a join must never reuse an id that is still
        // present — but *departed* ids are fair game, like a rejoining
        // host in a deployment.
        let mut present: std::collections::HashSet<u64> =
            init.iter().map(|m| m.id.value()).collect();
        for e in &trace.events {
            match e.kind {
                ChurnKind::Join(m) => {
                    assert!(
                        present.insert(m.id.value()),
                        "join reuses the still-present id {}",
                        m.id
                    );
                }
                ChurnKind::Leave(id) | ChurnKind::Crash(id) => {
                    assert!(present.remove(&id.value()), "departure of absent {id}");
                }
            }
        }
    }

    /// Regression: the id set used to only ever grow, so a long trace in a
    /// small identifier space would spin forever hunting a free id once
    /// the space filled with ghosts. Departures must release their ids.
    #[test]
    fn long_trace_in_tiny_space_terminates_and_recycles_ids() {
        // 64 ids, 3 initial members, 600 events: the joins alone (~300)
        // dwarf the id-space headroom, so this only terminates if
        // departed ids are re-issued.
        let space = IdSpace::new(6);
        let init = initial(3);
        let trace = ChurnTrace::generate(space, &init, 600, 1e4, 0.5, 21);
        assert_eq!(trace.events.len(), 600);

        let mut departed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut recycled = false;
        for e in &trace.events {
            match e.kind {
                ChurnKind::Join(m) => recycled |= departed.contains(&m.id.value()),
                ChurnKind::Leave(id) | ChurnKind::Crash(id) => {
                    departed.insert(id.value());
                }
            }
        }
        assert!(recycled, "a departed id must eventually be re-issued");
    }

    /// Joining members follow the scenario's configured workload, not a
    /// hardcoded range.
    #[test]
    fn generate_with_plumbs_configured_distributions() {
        let space = IdSpace::new(19);
        let trace = ChurnTrace::generate_with(
            space,
            &initial(40),
            300,
            1e4,
            0.5,
            9,
            &BandwidthDist::Constant(5_000.0),
            &CapacityAssignment::PerLink {
                p: 1_000.0,
                min: 2,
                max: 64,
            },
        );
        let joins: Vec<Member> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ChurnKind::Join(m) => Some(m),
                _ => None,
            })
            .collect();
        assert!(!joins.is_empty());
        assert!(joins.iter().all(|m| m.upload_kbps == 5_000.0));
        assert!(joins.iter().all(|m| m.capacity == 5));
    }

    /// The defaults must match the scenario generator's paper workload —
    /// and `generate` is a pure delegation, so the two entry points agree
    /// draw for draw.
    #[test]
    fn generate_matches_generate_with_paper_defaults() {
        let space = IdSpace::new(19);
        let init = initial(60);
        let a = ChurnTrace::generate(space, &init, 250, 1e5, 0.3, 17);
        let b = ChurnTrace::generate_with(
            space,
            &init,
            250,
            1e5,
            0.3,
            17,
            &BandwidthDist::PAPER,
            &CapacityAssignment::PAPER,
        );
        assert_eq!(a, b);
        for e in &a.events {
            if let ChurnKind::Join(m) = e.kind {
                assert!((400.0..=1000.0).contains(&m.upload_kbps));
                assert!((4..=10).contains(&m.capacity));
            }
        }
    }

    #[test]
    fn crash_fraction_extremes() {
        let space = IdSpace::new(19);
        let all_crash = ChurnTrace::generate(space, &initial(100), 300, 1e4, 1.0, 5);
        assert!(all_crash
            .events
            .iter()
            .all(|e| !matches!(e.kind, ChurnKind::Leave(_))));
        let no_crash = ChurnTrace::generate(space, &initial(100), 300, 1e4, 0.0, 5);
        assert!(no_crash
            .events
            .iter()
            .all(|e| !matches!(e.kind, ChurnKind::Crash(_))));
    }

    #[test]
    #[should_panic(expected = "empty initial population")]
    fn empty_initial_rejected() {
        ChurnTrace::generate(IdSpace::new(10), &[], 10, 1e4, 0.5, 1);
    }
}
