//! Scenario configuration and deterministic member generation.

use cam_overlay::{Member, MemberSet};
use cam_ring::{Id, IdSpace};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of upload bandwidths `B_x` (kbps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BandwidthDist {
    /// Uniform in `[lo, hi]` kbps — the paper's model (default
    /// `[400, 1000]`).
    Uniform {
        /// Lower bound (kbps).
        lo: f64,
        /// Upper bound (kbps).
        hi: f64,
    },
    /// Every host has the same bandwidth.
    Constant(f64),
    /// Pareto (heavy-tailed) with minimum `scale` and shape `alpha > 1` —
    /// the shape measurement studies report for real P2P upload capacity.
    /// Samples are capped at `cap` to keep capacities finite.
    Pareto {
        /// Minimum bandwidth (kbps); also the Pareto scale parameter.
        scale: f64,
        /// Tail exponent (must exceed 1 for a finite mean).
        alpha: f64,
        /// Upper cap on samples (kbps).
        cap: f64,
    },
}

impl BandwidthDist {
    /// The paper's default range `[400, 1000]` kbps.
    pub const PAPER: BandwidthDist = BandwidthDist::Uniform {
        lo: 400.0,
        hi: 1000.0,
    };

    /// Draws one bandwidth; shared by member generation and churn traces
    /// so joining members follow the same distribution as the initial
    /// population.
    pub(crate) fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            BandwidthDist::Uniform { lo, hi } => {
                debug_assert!(lo <= hi);
                rng.gen_range(lo..=hi)
            }
            BandwidthDist::Constant(b) => b,
            BandwidthDist::Pareto { scale, alpha, cap } => {
                debug_assert!(alpha > 1.0 && scale > 0.0 && cap >= scale);
                let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
                (scale / u.powf(1.0 / alpha)).min(cap)
            }
        }
    }

    /// Mean of the distribution (ignoring the Pareto cap, which only
    /// trims the extreme tail).
    pub fn mean(&self) -> f64 {
        match *self {
            BandwidthDist::Uniform { lo, hi } => (lo + hi) / 2.0,
            BandwidthDist::Constant(b) => b,
            BandwidthDist::Pareto { scale, alpha, .. } => alpha * scale / (alpha - 1.0),
        }
    }

    /// A Pareto distribution with the given tail exponent whose
    /// (uncapped) mean equals `mean` kbps; samples capped at `20 × mean`.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 1` and `mean > 0`.
    pub fn pareto_with_mean(mean: f64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1 for a finite mean");
        assert!(mean > 0.0, "mean must be positive");
        BandwidthDist::Pareto {
            scale: mean * (alpha - 1.0) / alpha,
            alpha,
            cap: mean * 20.0,
        }
    }
}

/// How a node's capacity `c_x` is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityAssignment {
    /// The paper's bandwidth-proportional rule `c_x = ⌊B_x / p⌋`, clamped
    /// to `[min, max]` (use `min = 4` when CAM-Koorde participates).
    PerLink {
        /// Desired bandwidth per multicast link, kbps.
        p: f64,
        /// Lower clamp (≥ 2).
        min: u32,
        /// Upper clamp.
        max: u32,
    },
    /// Capacity uniform in `[lo, hi]` regardless of bandwidth — used by the
    /// path-length experiments (Figures 9–11).
    Uniform {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// The capacity-oblivious baselines: every node gets the same `c`.
    Constant(u32),
}

impl CapacityAssignment {
    /// The paper's default `[4..10]` uniform range.
    pub const PAPER: CapacityAssignment = CapacityAssignment::Uniform { lo: 4, hi: 10 };

    /// Assigns one capacity from a sampled bandwidth; shared by member
    /// generation and churn traces.
    pub(crate) fn assign(&self, bandwidth_kbps: f64, rng: &mut impl Rng) -> u32 {
        match *self {
            CapacityAssignment::PerLink { p, min, max } => {
                debug_assert!(p > 0.0);
                let raw = (bandwidth_kbps / p).floor().max(0.0) as u32;
                raw.clamp(min.max(2), max)
            }
            CapacityAssignment::Uniform { lo, hi } => {
                debug_assert!(2 <= lo && lo <= hi);
                rng.gen_range(lo..=hi)
            }
            CapacityAssignment::Constant(c) => c.max(2),
        }
    }

    /// Expected capacity under this assignment given a bandwidth mean.
    pub fn expected(&self, bandwidth_mean: f64) -> f64 {
        match *self {
            CapacityAssignment::PerLink { p, min, max } => {
                (bandwidth_mean / p).clamp(f64::from(min), f64::from(max))
            }
            CapacityAssignment::Uniform { lo, hi } => f64::from(lo + hi) / 2.0,
            CapacityAssignment::Constant(c) => f64::from(c),
        }
    }
}

/// One experiment configuration.
///
/// # Example
///
/// ```
/// use cam_workload::Scenario;
///
/// // The paper's default setup, scaled down for a quick run.
/// let group = Scenario::paper_default(42).with_n(1_000).members();
/// assert_eq!(group.len(), 1_000);
/// assert!(group.iter().all(|m| (4..=10).contains(&m.capacity)));
/// assert!(group
///     .iter()
///     .all(|m| (400.0..=1000.0).contains(&m.upload_kbps)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Group size (the paper's default: 100,000).
    pub n: usize,
    /// Identifier-space bits (the paper: 19).
    pub bits: u32,
    /// Seed for deterministic generation.
    pub seed: u64,
    /// Upload-bandwidth distribution.
    pub bandwidth: BandwidthDist,
    /// Capacity rule.
    pub capacity: CapacityAssignment,
}

impl Scenario {
    /// The paper's defaults: `n = 100,000`, `N = 2^19`, `B ∈ U[400,1000]`,
    /// `c ∈ U[4..10]`.
    pub fn paper_default(seed: u64) -> Self {
        Scenario {
            n: 100_000,
            bits: 19,
            seed,
            bandwidth: BandwidthDist::PAPER,
            capacity: CapacityAssignment::PAPER,
        }
    }

    /// Returns the scenario with a different group size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds half the identifier space (the
    /// generator needs distinct identifiers with room to spare).
    pub fn with_n(mut self, n: usize) -> Self {
        assert!(n > 0, "empty group");
        assert!(
            (n as u64) <= (1u64 << self.bits) / 2,
            "group too large for identifier space"
        );
        self.n = n;
        self
    }

    /// Returns the scenario with a different identifier-space width.
    ///
    /// The paper's `2^19` space caps groups at 262,144 members; the
    /// million-member scale tier uses 24 bits. Set the width *before*
    /// [`with_n`](Self::with_n) so the size check runs against the
    /// intended space.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero, exceeds 63, or makes the current group
    /// size invalid.
    pub fn with_bits(mut self, bits: u32) -> Self {
        assert!(bits > 0 && bits < 64, "bits must be in 1..=63");
        assert!(
            (self.n as u64) <= (1u64 << bits) / 2,
            "group too large for identifier space"
        );
        self.bits = bits;
        self
    }

    /// Returns the scenario with a different capacity rule.
    pub fn with_capacity(mut self, capacity: CapacityAssignment) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns the scenario with a different bandwidth distribution.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthDist) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Returns the scenario with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deterministically generates the member set: distinct random
    /// identifiers (SHA-1-style uniform spread is modelled by the seeded
    /// RNG), bandwidths, and capacities.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates the invariants documented on
    /// [`Scenario::with_n`].
    pub fn members(&self) -> MemberSet {
        let space = IdSpace::new(self.bits);
        assert!(
            (self.n as u64) <= space.size() / 2,
            "group too large for identifier space"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < self.n {
            ids.insert(rng.gen_range(0..space.size()));
        }
        let members = ids
            .into_iter()
            .map(|v| {
                let upload_kbps = self.bandwidth.sample(&mut rng);
                let capacity = self.capacity.assign(upload_kbps, &mut rng);
                Member {
                    id: Id(v),
                    capacity,
                    upload_kbps,
                }
            })
            .collect();
        MemberSet::new(space, members).expect("generator produces valid groups")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Scenario::paper_default(7).with_n(500).members();
        let b = Scenario::paper_default(7).with_n(500).members();
        for i in 0..a.len() {
            assert_eq!(a.member(i), b.member(i));
        }
        let c = Scenario::paper_default(8).with_n(500).members();
        assert_ne!(a.member(0).id, c.member(0).id, "different seed differs");
    }

    #[test]
    fn per_link_capacity_tracks_bandwidth() {
        let s = Scenario::paper_default(3).with_n(2_000).with_capacity(
            CapacityAssignment::PerLink {
                p: 100.0,
                min: 2,
                max: 1_000,
            },
        );
        let g = s.members();
        for m in g.iter() {
            assert_eq!(m.capacity, (m.upload_kbps / 100.0).floor() as u32);
        }
        // Mean capacity ≈ 700/100 = 7 (floor pulls it to ≈ 6.5).
        let mean = g.mean_capacity();
        assert!((6.0..7.2).contains(&mean), "mean capacity {mean}");
    }

    #[test]
    fn uniform_capacity_in_range() {
        let g = Scenario::paper_default(9)
            .with_n(1_000)
            .with_capacity(CapacityAssignment::Uniform { lo: 4, hi: 200 })
            .members();
        assert!(g.iter().all(|m| (4..=200).contains(&m.capacity)));
        let mean = g.mean_capacity();
        assert!((90.0..110.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn constant_assignment() {
        let g = Scenario::paper_default(1)
            .with_n(64)
            .with_capacity(CapacityAssignment::Constant(8))
            .with_bandwidth(BandwidthDist::Constant(640.0))
            .members();
        assert!(g.iter().all(|m| m.capacity == 8));
        assert!(g.iter().all(|m| m.upload_kbps == 640.0));
    }

    #[test]
    fn pareto_shape() {
        let dist = BandwidthDist::pareto_with_mean(700.0, 2.0);
        assert!((dist.mean() - 700.0).abs() < 1e-9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let observed = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (observed - 700.0).abs() < 40.0,
            "observed mean {observed} (cap trims a little)"
        );
        // All samples at or above the scale (= 350 for alpha 2, mean 700).
        assert!(samples.iter().all(|&b| b >= 349.9));
        // Heavy tail: some samples far above the mean.
        assert!(samples.iter().any(|&b| b > 3_000.0));
    }

    #[test]
    fn expected_capacity_helper() {
        assert_eq!(CapacityAssignment::PAPER.expected(700.0), 7.0);
        let per_link = CapacityAssignment::PerLink {
            p: 70.0,
            min: 2,
            max: 100,
        };
        assert_eq!(per_link.expected(700.0), 10.0);
        assert_eq!(CapacityAssignment::Constant(5).expected(999.0), 5.0);
    }

    #[test]
    fn widened_space_admits_million_member_groups() {
        // Too slow to generate 1M members in a debug-mode unit test; the
        // builder's validation is what matters here (the scale bench
        // exercises the full generation in release mode).
        let s = Scenario::paper_default(1).with_bits(24).with_n(1_000_000);
        assert_eq!(s.bits, 24);
        assert_eq!(s.n, 1_000_000);
        let g = Scenario::paper_default(1)
            .with_bits(24)
            .with_n(3_000)
            .members();
        assert_eq!(g.space().bits(), 24);
        assert_eq!(g.len(), 3_000);
    }

    #[test]
    #[should_panic(expected = "group too large")]
    fn narrowed_space_rejects_current_group() {
        let _ = Scenario::paper_default(0).with_bits(10);
    }

    #[test]
    #[should_panic(expected = "group too large")]
    fn oversized_group_rejected() {
        let mut s = Scenario::paper_default(0);
        s.bits = 10;
        s.n = 1000; // > 2^10 / 2
        s.members();
    }

    #[test]
    #[should_panic(expected = "group too large")]
    fn with_n_validates_against_space() {
        let mut s = Scenario::paper_default(0);
        s.bits = 10;
        let _ = s.with_n(1000);
    }
}
