//! Multi-group pub/sub workloads: deterministic operation sequences that
//! drive a group registry (or a live overlay's subscribe/publish API)
//! from one seed.
//!
//! Real multicast deployments host many groups whose popularity is
//! heavily skewed — a few channels attract most subscribers (Zipf), and
//! interest can arrive in bursts (flash crowds) or churn continuously.
//! Each generator here emits a flat [`GroupOp`] sequence so the sim,
//! wire, and registry hosts can replay *identical* workloads and be
//! compared census-for-census.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One pub/sub service operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupOp {
    /// Register a new, empty group.
    Create {
        /// Group id.
        group: u64,
    },
    /// Node `node` subscribes to `group`.
    Subscribe {
        /// Group id.
        group: u64,
        /// Universe index of the subscriber.
        node: usize,
    },
    /// Node `node` drops its subscription to `group`.
    Unsubscribe {
        /// Group id.
        group: u64,
        /// Universe index of the subscriber.
        node: usize,
    },
    /// Publish one payload in `group` (from its canonical source).
    Publish {
        /// Group id.
        group: u64,
    },
}

/// Configuration for multi-group workload generation.
///
/// Group ids run `1..=n_groups`; popularity rank equals id, so group 1
/// is the hottest under the Zipf draw.
///
/// # Example
///
/// ```
/// use cam_workload::{GroupOp, MultiGroupScenario};
///
/// let w = MultiGroupScenario::new(100, 8, 42);
/// let ops = w.zipf_subscriptions(400);
/// // Deterministic: the same seed replays the same sequence.
/// assert_eq!(ops, MultiGroupScenario::new(100, 8, 42).zipf_subscriptions(400));
/// assert!(ops.iter().any(|op| matches!(op, GroupOp::Publish { .. })));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiGroupScenario {
    /// Number of nodes in the shared universe.
    pub n_nodes: usize,
    /// Number of groups.
    pub n_groups: usize,
    /// Zipf exponent for group popularity (1.0 is the classic web
    /// measurement; 0 makes every group equally popular).
    pub zipf_s: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl MultiGroupScenario {
    /// A scenario with the classic Zipf exponent `s = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` or `n_groups` is zero.
    pub fn new(n_nodes: usize, n_groups: usize, seed: u64) -> Self {
        assert!(n_nodes > 0, "empty universe");
        assert!(n_groups > 0, "no groups");
        MultiGroupScenario {
            n_nodes,
            n_groups,
            zipf_s: 1.0,
            seed,
        }
    }

    /// Returns the scenario with a different Zipf exponent.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn with_zipf(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent {s}");
        self.zipf_s = s;
        self
    }

    /// Cumulative Zipf weights over ranks `1..=n_groups`.
    fn zipf_cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(self.n_groups);
        for rank in 1..=self.n_groups {
            acc += 1.0 / (rank as f64).powf(self.zipf_s);
            cdf.push(acc);
        }
        cdf
    }

    /// Draws one group id (rank-as-id) from the Zipf distribution.
    fn draw_group(cdf: &[f64], rng: &mut impl Rng) -> u64 {
        let total = *cdf.last().expect("n_groups > 0");
        let u: f64 = rng.gen::<f64>() * total;
        let rank = cdf.partition_point(|&c| c < u);
        (rank.min(cdf.len() - 1) + 1) as u64
    }

    /// Zipf-popular subscription workload: create every group, draw
    /// `subscriptions` (group, node) pairs with Zipf-skewed group choice
    /// and uniform node choice, then publish once in each group
    /// (ascending id). Repeat draws of the same pair are kept — the
    /// registry treats them as idempotent re-subscriptions.
    pub fn zipf_subscriptions(&self, subscriptions: usize) -> Vec<GroupOp> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let cdf = self.zipf_cdf();
        let mut ops = Vec::with_capacity(self.n_groups * 2 + subscriptions);
        for g in 1..=self.n_groups as u64 {
            ops.push(GroupOp::Create { group: g });
        }
        for _ in 0..subscriptions {
            ops.push(GroupOp::Subscribe {
                group: Self::draw_group(&cdf, &mut rng),
                node: rng.gen_range(0..self.n_nodes),
            });
        }
        for g in 1..=self.n_groups as u64 {
            ops.push(GroupOp::Publish { group: g });
        }
        ops
    }

    /// Flash-crowd workload: one group, `joiners` distinct nodes all
    /// subscribing in one burst, then a single publish — the worst case
    /// for admission control because every subscription rebuilds a
    /// rapidly growing tree.
    ///
    /// # Panics
    ///
    /// Panics if `joiners > n_nodes`.
    pub fn flash_crowd(&self, group: u64, joiners: usize) -> Vec<GroupOp> {
        assert!(joiners <= self.n_nodes, "more joiners than nodes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut nodes: Vec<usize> = (0..self.n_nodes).collect();
        nodes.shuffle(&mut rng);
        let mut ops = vec![GroupOp::Create { group }];
        ops.extend(
            nodes[..joiners]
                .iter()
                .map(|&node| GroupOp::Subscribe { group, node }),
        );
        ops.push(GroupOp::Publish { group });
        ops
    }

    /// Hotspot workload: one group with `subscribers` distinct members
    /// and `publishes` back-to-back publishes from its canonical source —
    /// the single-source streaming pattern the paper's evaluation uses.
    ///
    /// # Panics
    ///
    /// Panics if `subscribers > n_nodes`.
    pub fn hotspot(&self, group: u64, subscribers: usize, publishes: usize) -> Vec<GroupOp> {
        let mut ops = self.flash_crowd(group, subscribers);
        ops.pop(); // the burst's single publish
        ops.extend((0..publishes).map(|_| GroupOp::Publish { group }));
        ops
    }

    /// Subscription-churn workload: create every group, seed each with
    /// Zipf-sized membership, then run `events` of interleaved churn —
    /// 50% subscribe, 30% unsubscribe, 20% publish, with Zipf-skewed
    /// group choice throughout.
    pub fn subscription_churn(&self, seed_subscriptions: usize, events: usize) -> Vec<GroupOp> {
        let mut ops = self.zipf_subscriptions(seed_subscriptions);
        let cdf = self.zipf_cdf();
        // Continue the stream deterministically, decoupled from the seed
        // phase's draw count.
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ 0xC4A9_5EBA_11C0_FFEE);
        for _ in 0..events {
            let group = Self::draw_group(&cdf, &mut rng);
            let node = rng.gen_range(0..self.n_nodes);
            let roll: f64 = rng.gen();
            ops.push(if roll < 0.5 {
                GroupOp::Subscribe { group, node }
            } else if roll < 0.8 {
                GroupOp::Unsubscribe { group, node }
            } else {
                GroupOp::Publish { group }
            });
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identical_sequences() {
        let a = MultiGroupScenario::new(500, 20, 7);
        let b = MultiGroupScenario::new(500, 20, 7);
        assert_eq!(a.zipf_subscriptions(1000), b.zipf_subscriptions(1000));
        assert_eq!(a.flash_crowd(3, 200), b.flash_crowd(3, 200));
        assert_eq!(a.hotspot(3, 100, 50), b.hotspot(3, 100, 50));
        assert_eq!(
            a.subscription_churn(300, 300),
            b.subscription_churn(300, 300)
        );
        let c = MultiGroupScenario::new(500, 20, 8);
        assert_ne!(a.zipf_subscriptions(1000), c.zipf_subscriptions(1000));
    }

    #[test]
    fn zipf_skews_subscriptions_toward_low_ranks() {
        let w = MultiGroupScenario::new(1000, 50, 11);
        let ops = w.zipf_subscriptions(20_000);
        let mut per_group = vec![0usize; 51];
        for op in &ops {
            if let GroupOp::Subscribe { group, .. } = op {
                per_group[*group as usize] += 1;
            }
        }
        // Rank 1 clearly beats rank 50 and roughly doubles rank 2.
        assert!(per_group[1] > 10 * per_group[50]);
        assert!(per_group[1] > per_group[2] * 3 / 2);
        // Every op addresses a valid group and node.
        for op in &ops {
            match *op {
                GroupOp::Create { group } | GroupOp::Publish { group } => {
                    assert!((1..=50).contains(&group))
                }
                GroupOp::Subscribe { group, node } | GroupOp::Unsubscribe { group, node } => {
                    assert!((1..=50).contains(&group));
                    assert!(node < 1000);
                }
            }
        }
    }

    #[test]
    fn flash_crowd_joins_are_distinct() {
        let ops = MultiGroupScenario::new(300, 1, 5).flash_crowd(9, 250);
        let mut nodes: Vec<usize> = ops
            .iter()
            .filter_map(|op| match op {
                GroupOp::Subscribe { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(nodes.len(), 250);
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 250, "no node joins twice");
        assert_eq!(ops[0], GroupOp::Create { group: 9 });
        assert_eq!(*ops.last().unwrap(), GroupOp::Publish { group: 9 });
    }

    #[test]
    fn hotspot_repeats_publishes() {
        let ops = MultiGroupScenario::new(100, 1, 2).hotspot(4, 30, 25);
        let publishes = ops
            .iter()
            .filter(|op| matches!(op, GroupOp::Publish { .. }))
            .count();
        assert_eq!(publishes, 25);
    }

    #[test]
    fn churn_mixes_all_operation_kinds() {
        let ops = MultiGroupScenario::new(200, 10, 3).subscription_churn(100, 2000);
        let unsubs = ops
            .iter()
            .filter(|op| matches!(op, GroupOp::Unsubscribe { .. }))
            .count();
        let pubs = ops
            .iter()
            .filter(|op| matches!(op, GroupOp::Publish { .. }))
            .count();
        // ~600 unsubscribes and ~400+10 publishes expected; loose bounds.
        assert!((300..900).contains(&unsubs), "unsubs {unsubs}");
        assert!((200..700).contains(&pubs), "pubs {pubs}");
    }
}
