#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Workload and scenario generation for the CAM experiments.
//!
//! The paper's evaluation (Section 6) fixes an identifier space of `2^19`,
//! a default group size of 100,000, node capacities uniform in `[4..10]`,
//! and upload bandwidths uniform in `[400..1000]` kbps, with
//! `c_x = ⌊B_x/p⌋` tying capacity to bandwidth through the per-link target
//! `p`. [`Scenario`] captures one such configuration; [`Scenario::members`]
//! deterministically generates the group for a seed.
//!
//! [`churn`] generates Poisson join/leave traces for the dynamic
//! (resilience) experiments; [`multigroup`] generates deterministic
//! multi-group pub/sub operation sequences (Zipf popularity, flash
//! crowds, hotspots, subscription churn).

pub mod churn;
pub mod multigroup;
pub mod scenario;

pub use churn::{ChurnEvent, ChurnKind, ChurnTrace};
pub use multigroup::{GroupOp, MultiGroupScenario};
pub use scenario::{BandwidthDist, CapacityAssignment, Scenario};
