//! Figure 8: the throughput ↔ latency trade-off.
//!
//! Sweeping the per-link target `p` moves both multicast throughput
//! (≈ `p`) and tree depth (≈ `log n / log c̄` with `c̄ ≈ B̄/p`) at once.
//! The paper plots average path length against achieved throughput for
//! CAM-Chord and CAM-Koorde and observes a crossover: CAM-Chord is better
//! (shorter paths) at high throughput / small capacities, CAM-Koorde at
//! low throughput / large capacities.

use cam_core::{CamChord, CamKoorde};
use cam_metrics::{DataSeries, DataTable};
use cam_workload::{BandwidthDist, CapacityAssignment, Scenario};

use crate::runner::{parallel_sweep, sample_trees, Options};

/// Per-link bandwidth targets swept (kbps).
pub const P_VALUES: [f64; 9] = [10.0, 15.0, 20.0, 28.0, 38.0, 46.0, 60.0, 80.0, 100.0];

/// Runs the Figure 8 sweep.
pub fn run(opts: &Options) -> DataTable {
    let mut table = DataTable::new(
        "Figure 8: throughput vs average path length (sweeping p)",
        "throughput_kbps",
    );
    let points = parallel_sweep(P_VALUES.to_vec(), |&p| {
        let group = Scenario::paper_default(opts.sub_seed(p as u64))
            .with_n(opts.n)
            .with_bandwidth(BandwidthDist::PAPER)
            .with_capacity(CapacityAssignment::PerLink {
                p,
                min: 4,
                max: 4096,
            })
            .members();
        let chord = sample_trees(
            &CamChord::new(group.clone()),
            opts.sources,
            opts.sub_seed(1),
        );
        let koorde = sample_trees(&CamKoorde::new(group), opts.sources, opts.sub_seed(2));
        (
            (chord.throughput_kbps.mean(), chord.avg_path_len.mean()),
            (koorde.throughput_kbps.mean(), koorde.avg_path_len.mean()),
        )
    });
    let mut cam_chord = DataSeries::new("CAM-Chord");
    let mut cam_koorde = DataSeries::new("CAM-Koorde");
    for ((tc, lc), (tk, lk)) in points {
        cam_chord.push(tc, lc);
        cam_koorde.push(tk, lk);
    }
    table.push(cam_chord);
    table.push(cam_koorde);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_rises_with_throughput() {
        let mut opts = Options::quick();
        opts.n = 2_000;
        opts.sources = 2;
        let table = run(&opts);
        for name in ["CAM-Chord", "CAM-Koorde"] {
            let s = table.series_named(name).unwrap();
            // Points were pushed in increasing p (increasing throughput);
            // the path length must grow along the sweep.
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            assert!(last.0 > first.0, "{name}: throughput should grow with p");
            assert!(
                last.1 > first.1,
                "{name}: higher throughput must cost longer paths"
            );
        }
    }
}
