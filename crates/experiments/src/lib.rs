#![forbid(unsafe_code)]

//! Experiment harness: regenerates every figure of the paper's evaluation
//! (Section 6) plus the extension experiments listed in `DESIGN.md`.
//!
//! Each `figN` module exposes a `run(&Options) -> DataTable` that produces
//! the same series the paper plots; the `repro` binary prints them as
//! aligned text tables and writes CSVs under `results/`. `Options::quick()`
//! shrinks the group size so the whole suite can run in CI and in tests;
//! `Options::paper()` uses the paper's full 100,000-node groups.
//!
//! | Module | Paper figure | What it shows |
//! |--------|--------------|---------------|
//! | [`fig6`] | Figure 6 | throughput vs. average children, 4 systems |
//! | [`fig7`] | Figure 7 | CAM/baseline throughput ratio vs. bandwidth range |
//! | [`fig8`] | Figure 8 | throughput ↔ path-length trade-off |
//! | [`fig9`] | Figure 9 | CAM-Chord path-length distribution per capacity range |
//! | [`fig10`] | Figure 10 | CAM-Koorde path-length distribution per capacity range |
//! | [`fig11`] | Figure 11 | average path length vs. average capacity + 1.5·ln n/ln c |
//! | [`ext`] | — | resilience under churn, maintenance overhead, ablations, lookup hops |

pub mod ext;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod runner;

pub use runner::Options;
