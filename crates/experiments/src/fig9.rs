//! Figure 9: path-length distribution in CAM-Chord for widening capacity
//! ranges.
//!
//! One series per capacity range `[4..y]` (the paper's legend); each point
//! is (path length in hops, number of nodes reached at that depth), pooled
//! over the sampled sources and normalized to a single tree of `n` nodes.

use cam_core::CamChord;
use cam_metrics::{DataSeries, DataTable};
use cam_workload::{CapacityAssignment, Scenario};

use crate::runner::{parallel_sweep, sample_trees, Options};

/// The paper's capacity ranges for Figure 9 (upper bounds; lower fixed 4).
pub const RANGES: [u32; 9] = [4, 6, 8, 10, 20, 40, 60, 100, 200];

/// Runs Figure 9: one distribution per capacity range.
pub fn run(opts: &Options) -> DataTable {
    run_with(opts, &RANGES, CamChord::new, "CAM-Chord")
}

/// Shared engine for Figures 9 and 10.
pub(crate) fn run_with<O, F>(opts: &Options, ranges: &[u32], make: F, system: &str) -> DataTable
where
    O: cam_overlay::StaticOverlay,
    F: Fn(cam_overlay::MemberSet) -> O + Sync,
{
    let mut table = DataTable::new(
        format!("Path-length distribution in {system} (per capacity range)"),
        "path_length_hops",
    );
    let series = parallel_sweep(ranges.to_vec(), |&hi| {
        let group = Scenario::paper_default(opts.sub_seed(u64::from(hi)))
            .with_n(opts.n)
            .with_capacity(CapacityAssignment::Uniform { lo: 4, hi })
            .members();
        let overlay = make(group);
        let agg = sample_trees(&overlay, opts.sources, opts.sub_seed(u64::from(hi) + 1));
        let name = if hi == 4 {
            "4".to_string()
        } else {
            format!("[4..{hi}]")
        };
        let mut s = DataSeries::new(name);
        let trees = agg.trees() as f64;
        for (hops, &count) in agg.path_lengths.buckets().iter().enumerate() {
            if hops > 0 {
                s.push(hops as f64, count as f64 / trees);
            }
        }
        s
    });
    for s in series {
        table.push(s);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_ranges_shift_distribution_left() {
        let mut opts = Options::quick();
        opts.n = 3_000;
        opts.sources = 2;
        let table = run_with(&opts, &[4, 40], CamChord::new, "CAM-Chord");
        let narrow = table.series_named("4").unwrap();
        let wide = table.series_named("[4..40]").unwrap();
        let mean = |s: &DataSeries| {
            let total: f64 = s.points.iter().map(|&(_, y)| y).sum();
            s.points.iter().map(|&(x, y)| x * y).sum::<f64>() / total
        };
        assert!(
            mean(wide) < mean(narrow),
            "higher capacities must shorten paths: {} vs {}",
            mean(wide),
            mean(narrow)
        );
        // Every member is accounted for in each distribution.
        let total: f64 = narrow.points.iter().map(|&(_, y)| y).sum();
        assert!((total - (opts.n as f64 - 1.0)).abs() < 1.0, "total {total}");
    }
}
