//! Figure 6: multicast throughput vs. average number of children per
//! non-leaf node, for CAM-Chord, Chord, CAM-Koorde, and Koorde.
//!
//! The x-axis is the *configured* mean degree — mean capacity `c̄ = B̄/p`
//! for the CAMs, the uniform degree `k` for the capacity-oblivious
//! baselines — matching the paper's sweep (a tree-measured "children per
//! non-leaf" would be dragged down by the 1-child chain nodes at the
//! bottom of every region tree when `n ≪ N`).
//!
//! Baselines:
//!
//! * **Chord** — uniform degree `k` for every node, same region-splitting
//!   dissemination as CAM-Chord but capacity-*oblivious* (`k` independent
//!   of bandwidth). This isolates exactly the paper's point: the
//!   bottleneck node is a slow host with a full family, so throughput is
//!   `min B / k ≈ 400/k` versus the CAMs' `≈ p = B̄/c̄` — the reported
//!   70–80% gap at `B ∈ U[400, 1000]`.
//! * **Chord (El-Ansary)** — classic Chord broadcast over base-`k`
//!   fingers, where tree degree additionally varies with position (root ≈
//!   `(k−1)·log_k n`), degrading throughput further.
//! * **Koorde** — uniform-degree flooding: the same spread-neighbor
//!   topology as CAM-Koorde but with every node's degree fixed at `k`
//!   regardless of bandwidth. (Literal left-shift Koorde cannot even reach
//!   the paper's 10–70 children per node at `n = 10^5, N = 2^19`: its `k`
//!   consecutive neighbor identifiers collapse onto ~`k·n/N` distinct
//!   nodes. It is included as the extra series "Koorde (left-shift)" to
//!   quantify exactly that clustering.)

use cam_core::{CamChord, CamKoorde};
use cam_metrics::{DataSeries, DataTable};
use cam_workload::{BandwidthDist, CapacityAssignment, Scenario};
use chord_overlay::Chord;
use koorde_overlay::Koorde;

use crate::runner::{parallel_sweep, sample_trees, Options};

/// Mean degrees swept (CAMs: mean capacity; baselines: uniform degree).
pub const DEGREE_TARGETS: [u32; 8] = [5, 7, 10, 14, 20, 28, 45, 70];
/// Uniform degrees swept by the literal left-shift Koorde (powers of two).
pub const KOORDE_DEGREES: [u32; 5] = [4, 8, 16, 32, 64];

/// Runs the Figure 6 sweep.
pub fn run(opts: &Options) -> DataTable {
    let mut table = DataTable::new(
        "Figure 6: multicast throughput vs average children per non-leaf",
        "avg_children",
    );
    let mean_b = BandwidthDist::PAPER.mean();

    let points = parallel_sweep(DEGREE_TARGETS.to_vec(), |&target| {
        let seed = opts.sub_seed(u64::from(target));
        // Capacity-aware group: c = floor(B/p) with p = B̄/target.
        let cam_group = Scenario::paper_default(seed)
            .with_n(opts.n)
            .with_capacity(CapacityAssignment::PerLink {
                p: mean_b / f64::from(target),
                min: 4,
                max: 4096,
            })
            .members();
        // Capacity-oblivious group: same hosts' bandwidths, uniform degree.
        let base_group = Scenario::paper_default(seed)
            .with_n(opts.n)
            .with_capacity(CapacityAssignment::Constant(target))
            .members();

        let cam_x = cam_group.mean_capacity();
        let cam_chord = sample_trees(&CamChord::new(cam_group.clone()), opts.sources, seed ^ 1)
            .throughput_kbps
            .mean();
        let cam_koorde = sample_trees(&CamKoorde::new(cam_group), opts.sources, seed ^ 2)
            .throughput_kbps
            .mean();
        let chord_uniform =
            sample_trees(&CamChord::new(base_group.clone()), opts.sources, seed ^ 3)
                .throughput_kbps
                .mean();
        let chord_elansary = sample_trees(
            &Chord::new(base_group.clone(), target),
            opts.sources,
            seed ^ 4,
        )
        .throughput_kbps
        .mean();
        let koorde_uniform = sample_trees(&CamKoorde::new(base_group), opts.sources, seed ^ 5)
            .throughput_kbps
            .mean();
        (
            cam_x,
            cam_chord,
            cam_koorde,
            chord_uniform,
            chord_elansary,
            koorde_uniform,
        )
    });

    let mut cam_chord = DataSeries::new("CAM-Chord");
    let mut cam_koorde = DataSeries::new("CAM-Koorde");
    let mut chord_uniform = DataSeries::new("Chord");
    let mut chord_elansary = DataSeries::new("Chord (El-Ansary)");
    let mut koorde_uniform = DataSeries::new("Koorde");
    for (&target, (cam_x, cc, ck, cu, ce, ku)) in DEGREE_TARGETS.iter().zip(points) {
        cam_chord.push(cam_x, cc);
        cam_koorde.push(cam_x, ck);
        chord_uniform.push(f64::from(target), cu);
        chord_elansary.push(f64::from(target), ce);
        koorde_uniform.push(f64::from(target), ku);
    }

    let koorde_points = parallel_sweep(KOORDE_DEGREES.to_vec(), |&k| {
        let group = Scenario::paper_default(opts.sub_seed(2000 + u64::from(k)))
            .with_n(opts.n)
            .with_capacity(CapacityAssignment::Constant(k + 2))
            .members();
        sample_trees(&Koorde::new(group, k), opts.sources, opts.sub_seed(5))
            .throughput_kbps
            .mean()
    });
    let mut koorde_ls = DataSeries::new("Koorde (left-shift)");
    for (&k, y) in KOORDE_DEGREES.iter().zip(koorde_points) {
        koorde_ls.push(f64::from(k), y);
    }

    table.push(cam_chord);
    table.push(chord_uniform);
    table.push(chord_elansary);
    table.push(cam_koorde);
    table.push(koorde_uniform);
    table.push(koorde_ls);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cams_beat_baselines_at_comparable_fanout() {
        let mut opts = Options::quick();
        opts.n = 2_000;
        opts.sources = 2;
        let table = run(&opts);
        assert_eq!(table.series.len(), 6);
        // Compare near degree 10 (CAM x is the measured mean capacity,
        // which lands close to the configured 10).
        let cam = table
            .series_named("CAM-Chord")
            .unwrap()
            .y_near(10.0)
            .unwrap();
        let chord = table.series_named("Chord").unwrap().y_near(10.0).unwrap();
        assert!(
            cam > chord * 1.3,
            "CAM-Chord ({cam:.1}) should clearly beat uniform-degree Chord ({chord:.1})"
        );
        let elansary = table
            .series_named("Chord (El-Ansary)")
            .unwrap()
            .y_near(10.0)
            .unwrap();
        assert!(
            chord >= elansary,
            "uniform-degree Chord ({chord:.1}) should be no worse than El-Ansary ({elansary:.1})"
        );
        let camk = table
            .series_named("CAM-Koorde")
            .unwrap()
            .y_near(10.0)
            .unwrap();
        let koorde = table.series_named("Koorde").unwrap().y_near(10.0).unwrap();
        assert!(
            camk > koorde,
            "CAM-Koorde ({camk:.1}) should beat Koorde ({koorde:.1})"
        );
    }

    #[test]
    fn throughput_decreases_with_fanout() {
        let mut opts = Options::quick();
        opts.n = 1_500;
        opts.sources = 2;
        let table = run(&opts);
        let cam = table.series_named("CAM-Chord").unwrap();
        let first = cam.points.first().unwrap().1;
        let last = cam.points.last().unwrap().1;
        assert!(first > last, "more children → lower per-link bandwidth");
    }

    /// The paper's headline: ~70–80% improvement at the default workload
    /// (B ∈ U[400, 1000], mean degree ≈ 7): ratio ≈ (a+b)/2a = 1.75.
    #[test]
    fn improvement_matches_mean_over_min_bandwidth() {
        let mut opts = Options::quick();
        opts.n = 3_000;
        opts.sources = 3;
        let table = run(&opts);
        let cam = table
            .series_named("CAM-Chord")
            .unwrap()
            .y_near(7.0)
            .unwrap();
        let chord = table.series_named("Chord").unwrap().y_near(7.0).unwrap();
        let ratio = cam / chord;
        assert!(
            (1.4..2.2).contains(&ratio),
            "improvement ratio {ratio:.2} should be near 1.75"
        );
    }
}
