//! Figure 11: average multicast path length vs. average node capacity,
//! with the paper's `1.5·ln(n)/ln(c)` reference bound.
//!
//! The paper observes CAM-Chord's paths are shorter below capacity ≈ 10
//! and CAM-Koorde's shorter above ≈ 12, both staying under the analytic
//! curve (Theorems 4 and 6).

use cam_core::{CamChord, CamKoorde};
use cam_metrics::{DataSeries, DataTable};
use cam_workload::{CapacityAssignment, Scenario};

use crate::runner::{parallel_sweep, sample_trees, Options};

/// Average capacities swept (range `[4 .. 2c̄−4]` gives mean `c̄`; the
/// first entry uses the constant range `[4..4]`).
pub const MEAN_CAPACITIES: [u32; 10] = [4, 6, 8, 10, 12, 16, 24, 40, 70, 110];

/// Runs the Figure 11 sweep.
pub fn run(opts: &Options) -> DataTable {
    let mut table = DataTable::new(
        "Figure 11: average path length vs average node capacity",
        "avg_capacity",
    );
    let points = parallel_sweep(MEAN_CAPACITIES.to_vec(), |&mean_c| {
        let hi = if mean_c <= 4 { 4 } else { 2 * mean_c - 4 };
        let group = Scenario::paper_default(opts.sub_seed(u64::from(mean_c)))
            .with_n(opts.n)
            .with_capacity(CapacityAssignment::Uniform { lo: 4, hi })
            .members();
        let measured_mean = group.mean_capacity();
        let chord = sample_trees(
            &CamChord::new(group.clone()),
            opts.sources,
            opts.sub_seed(1),
        );
        let koorde = sample_trees(&CamKoorde::new(group), opts.sources, opts.sub_seed(2));
        (
            measured_mean,
            chord.avg_path_len.mean(),
            koorde.avg_path_len.mean(),
        )
    });

    let mut cam_chord = DataSeries::new("CAM-Chord");
    let mut cam_koorde = DataSeries::new("CAM-Koorde");
    let mut reference = DataSeries::new("1.5*ln(n)/ln(c)");
    let n = opts.n as f64;
    for (c, lc, lk) in points {
        cam_chord.push(c, lc);
        cam_koorde.push(c, lk);
        reference.push(c, 1.5 * n.ln() / c.ln());
    }
    table.push(cam_chord);
    table.push(cam_koorde);
    table.push(reference);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_curve_upper_bounds_measurements() {
        let mut opts = Options::quick();
        opts.n = 3_000;
        opts.sources = 2;
        let table = run(&opts);
        let reference = table.series_named("1.5*ln(n)/ln(c)").unwrap();
        for name in ["CAM-Chord", "CAM-Koorde"] {
            let s = table.series_named(name).unwrap();
            for (&(c, measured), &(_, bound)) in s.points.iter().zip(&reference.points) {
                assert!(
                    measured <= bound + 0.5,
                    "{name} at c={c}: {measured:.2} exceeds 1.5 ln n/ln c = {bound:.2}"
                );
            }
        }
    }

    #[test]
    fn path_length_decreases_with_capacity() {
        let mut opts = Options::quick();
        opts.n = 2_000;
        opts.sources = 2;
        let table = run(&opts);
        let s = table.series_named("CAM-Chord").unwrap();
        assert!(s.points.first().unwrap().1 > s.points.last().unwrap().1);
    }
}
