//! Extension experiments beyond the paper's figures (DESIGN.md Ext-A–D):
//! resilience under crash failures, maintenance overhead, design-choice
//! ablations, and lookup-hop scaling.

use cam_core::cam_chord::{CamChordProtocol, ChildSelection, ProximityCamChord};
use cam_core::cam_koorde::multicast::FloodEdges;
use cam_core::cam_koorde::CamKoordeProtocol;
use cam_core::SharedTree;
use cam_core::{CamChord, CamKoorde};
use cam_metrics::{DataSeries, DataTable, Summary};
use cam_overlay::dynamic::{DhtProtocol, DynamicNetwork};
use cam_overlay::StaticOverlay;
use cam_sim::time::Duration;
use cam_sim::LatencyModel;
use cam_workload::{CapacityAssignment, Scenario};

use crate::runner::{parallel_sweep, sample_trees, Options};

/// Ext-A: delivery ratio of a multicast started immediately after a crash
/// of `f%` of the nodes, before stabilization has repaired anything, and
/// again after letting maintenance run.
///
/// CAM-Chord's region-splitting trees lose whole subtree regions with each
/// crashed internal node, while CAM-Koorde's flooding routes around
/// failures — the redundancy/maintenance trade-off the paper discusses in
/// Section 2 ("CAM-Koorde works better with relatively large frequency of
/// membership change").
pub fn resilience(opts: &Options) -> DataTable {
    let n = opts.n.min(1_500); // event-level simulation: keep it tractable
    let fractions = [0.0f64, 0.05, 0.10, 0.20, 0.30];
    let mut table = DataTable::new(
        "Ext-A: delivery ratio after crashing f of the nodes",
        "crash_fraction",
    );

    let run_one = |region_split: bool, fraction: f64, seed: u64| -> (f64, f64) {
        let members = Scenario::paper_default(seed).with_n(n).members();
        let member_vec: Vec<_> = members.iter().collect();
        let latency = LatencyModel::Uniform {
            min: Duration::from_millis(20),
            max: Duration::from_millis(80),
        };
        let (before, after) = if region_split {
            let mut net = DynamicNetwork::converged(
                members.space(),
                &member_vec,
                CamChordProtocol,
                seed,
                latency,
            );
            run_crash_multicast(&mut net, fraction, true, seed)
        } else {
            let mut net = DynamicNetwork::converged(
                members.space(),
                &member_vec,
                CamKoordeProtocol,
                seed,
                latency,
            );
            run_crash_multicast(&mut net, fraction, false, seed)
        };
        (before, after)
    };

    let results = parallel_sweep(fractions.to_vec(), |&f| {
        let seed = opts.sub_seed((f * 100.0) as u64);
        (run_one(true, f, seed), run_one(false, f, seed + 1))
    });

    let mut chord_before = DataSeries::new("CAM-Chord (no repair)");
    let mut chord_after = DataSeries::new("CAM-Chord (after repair)");
    let mut koorde_before = DataSeries::new("CAM-Koorde (no repair)");
    let mut koorde_after = DataSeries::new("CAM-Koorde (after repair)");
    for (&f, ((cb, ca), (kb, ka))) in fractions.iter().zip(results) {
        chord_before.push(f, cb);
        chord_after.push(f, ca);
        koorde_before.push(f, kb);
        koorde_after.push(f, ka);
    }
    table.push(chord_before);
    table.push(chord_after);
    table.push(koorde_before);
    table.push(koorde_after);
    table
}

fn run_crash_multicast<P: DhtProtocol>(
    net: &mut DynamicNetwork<P>,
    fraction: f64,
    region_split: bool,
    seed: u64,
) -> (f64, f64) {
    let total = net.actors().len();
    let source = net.actors()[0].1;
    let victims = ((total - 1) as f64 * fraction).round() as usize;
    net.kill_random(victims, source, seed ^ 0xDEAD);

    // Multicast immediately: routing tables still contain the dead.
    let payload1 = net.start_multicast(source, region_split);
    net.sim.run_until(net.sim.now() + Duration::from_secs(20));
    let before = net.delivery_ratio(payload1);

    // Let stabilization repair rings and fingers, then multicast again.
    // (~240 stabilize rounds: enough to drain even a 30%-crash backlog.)
    net.sim.run_until(net.sim.now() + Duration::from_secs(120));
    let payload2 = net.start_multicast(source, region_split);
    net.sim.run_until(net.sim.now() + Duration::from_secs(20));
    let after = net.delivery_ratio(payload2);
    (before, after)
}

/// One Ext-A-style resilience run (20% crashes, multicast before and
/// after stabilization repair) captured as a full event trace — the run
/// behind `repro --trace-out`. Returns the tracer holding the recorded
/// events plus a telemetry snapshot of the simulator's counters.
pub fn resilience_trace(opts: &Options) -> cam_trace::RecordingTracer {
    let n = opts.n.min(600);
    let seed = opts.sub_seed(0xEA);
    let members: Vec<_> = Scenario::paper_default(seed)
        .with_n(n)
        .members()
        .iter()
        .collect();
    let latency = LatencyModel::Uniform {
        min: Duration::from_millis(20),
        max: Duration::from_millis(80),
    };
    let mut net = DynamicNetwork::converged(
        cam_ring::IdSpace::PAPER,
        &members,
        CamChordProtocol,
        seed,
        latency,
    );
    net.sim
        .set_tracer(Box::new(cam_trace::RecordingTracer::new()));
    let (before, after) = run_crash_multicast(&mut net, 0.20, true, seed);

    let stats = net.sim.stats();
    let tracer = net.sim.tracer_mut();
    tracer.counter_add("sim.messages_sent", stats.sent);
    tracer.counter_add("sim.messages_delivered", stats.delivered);
    tracer.counter_add("sim.messages_dropped", stats.dropped);
    tracer.counter_add("sim.timer_firings", stats.timers);
    tracer.counter_add("sim.events", stats.events);
    // Delivery ratios as per-mille gauges (the registry is integral).
    tracer.gauge_set("sim.delivery_before_permille", (before * 1000.0) as i64);
    tracer.gauge_set("sim.delivery_after_permille", (after * 1000.0) as i64);
    net.sim
        .take_tracer()
        .as_recording()
        .cloned()
        .expect("a recording tracer was installed above")
}

/// Ext-B: maintenance overhead — distinct overlay neighbors per node as
/// capacity grows. CAM-Chord pays `O(c · log n / log c)`; CAM-Koorde pays
/// exactly `c` slots (fewer after deduplication).
pub fn overhead(opts: &Options) -> DataTable {
    let mut table = DataTable::new("Ext-B: routing-table size vs node capacity", "capacity");
    let capacities: Vec<u32> = vec![4, 8, 16, 32, 64, 100];
    let results = parallel_sweep(capacities.clone(), |&c| {
        let group = Scenario::paper_default(opts.sub_seed(u64::from(c)))
            .with_n(opts.n)
            .with_capacity(CapacityAssignment::Constant(c))
            .members();
        let chord = CamChord::new(group.clone());
        let koorde = CamKoorde::new(group);
        let sample = 200.min(chord.members().len());
        let mut sc = Summary::new();
        let mut sk = Summary::new();
        for m in 0..sample {
            sc.record(chord.neighbor_count(m) as f64);
            sk.record(koorde.neighbor_count(m) as f64);
        }
        (sc.mean(), sk.mean())
    });
    let mut chord = DataSeries::new("CAM-Chord neighbors");
    let mut koorde = DataSeries::new("CAM-Koorde neighbors");
    for (&c, (nc, nk)) in capacities.iter().zip(results) {
        chord.push(f64::from(c), nc);
        koorde.push(f64::from(c), nk);
    }
    table.push(chord);
    table.push(koorde);
    table
}

/// Ext-C: ablations of the two interpretation choices documented in
/// DESIGN.md — `ceil` vs `floor` child selection in CAM-Chord, and
/// out-only vs bidirectional flooding in CAM-Koorde.
pub fn ablation(opts: &Options) -> DataTable {
    let mut table = DataTable::new("Ext-C: ablations (avg path length per variant)", "variant");
    let group = Scenario::paper_default(opts.sub_seed(7))
        .with_n(opts.n)
        .members();

    let variants: Vec<(&str, f64)> = vec![
        ("CAM-Chord ceil", {
            let o = CamChord::new(group.clone()).with_selection(ChildSelection::Ceil);
            sample_trees(&o, opts.sources, opts.sub_seed(1))
                .avg_path_len
                .mean()
        }),
        ("CAM-Chord floor", {
            let o = CamChord::new(group.clone()).with_selection(ChildSelection::Floor);
            sample_trees(&o, opts.sources, opts.sub_seed(1))
                .avg_path_len
                .mean()
        }),
        ("CAM-Koorde out-edges", {
            let o = CamKoorde::with_edges(group.clone(), FloodEdges::Out);
            sample_trees(&o, opts.sources, opts.sub_seed(2))
                .avg_path_len
                .mean()
        }),
        ("CAM-Koorde bidirectional", {
            let o = CamKoorde::with_edges(group.clone(), FloodEdges::Bidirectional);
            sample_trees(&o, opts.sources, opts.sub_seed(2))
                .avg_path_len
                .mean()
        }),
    ];
    let mut s = DataSeries::new("avg_path_len");
    for (i, (_, v)) in variants.iter().enumerate() {
        s.push(i as f64, *v);
    }
    // Keep the variant names visible in the title for the text rendering.
    table.title = format!(
        "Ext-C ablations: {}",
        variants
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{i}={name}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    table.push(s);
    table
}

/// Ext-D: average lookup hops vs. group size for all four systems —
/// the shape check for Theorems 1–2 (CAM-Chord `O(log n / log c)`) and
/// 5–6 (CAM-Koorde `O(log n / E(log c))`).
pub fn lookup_hops(opts: &Options) -> DataTable {
    use rand::{Rng, SeedableRng};
    let sizes: Vec<usize> = if opts.n >= 50_000 {
        vec![1_000, 3_000, 10_000, 30_000, 100_000]
    } else {
        vec![250, 500, 1_000, 2_000, opts.n.max(3_000)]
    };
    let mut table = DataTable::new("Ext-D: average lookup hops vs group size", "n");
    let trials = 300usize;
    let results = parallel_sweep(sizes.clone(), |&n| {
        let group = Scenario::paper_default(opts.sub_seed(n as u64))
            .with_n(n)
            .members();
        let overlays: Vec<Box<dyn StaticOverlay>> = vec![
            Box::new(CamChord::new(group.clone())),
            Box::new(CamKoorde::new(group.clone())),
            Box::new(chord_overlay::Chord::new(group.clone(), 2)),
            Box::new(koorde_overlay::Koorde::new(group.clone(), 8)),
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.sub_seed(n as u64 + 1));
        let mut means = Vec::new();
        for o in &overlays {
            let mut sum = 0u64;
            for _ in 0..trials {
                let origin = rng.gen_range(0..n);
                let key = cam_ring::Id(rng.gen_range(0..group.space().size()));
                sum += u64::from(o.lookup(origin, key).hops());
            }
            means.push(sum as f64 / trials as f64);
        }
        means
    });
    let names = ["CAM-Chord", "CAM-Koorde", "Chord (base 2)", "Koorde (k=8)"];
    for (i, name) in names.iter().enumerate() {
        let mut s = DataSeries::new(*name);
        for (&n, means) in sizes.iter().zip(&results) {
            s.push(n as f64, means[i]);
        }
        table.push(s);
    }
    table
}

/// Ext-E: per-node forwarding load — one shared tree per group (§5.1
/// tree-building) vs. the CAMs' per-source implicit trees (flooding
/// approach), for an `M`-message any-source session.
///
/// The paper's analysis: with a shared tree, internal nodes forward
/// `O(k·M)` copies and the majority (leaves) forward none; with per-source
/// implicit trees everyone forwards `O(M)`. The series report the load
/// distribution percentiles (copies forwarded per message).
pub fn load_balance(opts: &Options) -> DataTable {
    use rand::{Rng, SeedableRng};
    let n = opts.n.min(20_000);
    let group = Scenario::paper_default(opts.sub_seed(0xE5))
        .with_n(n)
        .members();
    let overlay = CamChord::new(group.clone());
    let messages = 60usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.sub_seed(0xE6));
    let sources: Vec<usize> = (0..messages).map(|_| rng.gen_range(0..n)).collect();

    // Shared tree (tree-building approach).
    let shared = SharedTree::build(&overlay, cam_ring::Id(0));
    let mut shared_load = vec![0u64; n];
    for &s in &sources {
        shared.accumulate_load(s, &mut shared_load);
    }

    // Per-source implicit trees (the CAM/flooding approach): a node's
    // forwarding load for one message is its fan-out in that source's tree.
    let mut cam_load = vec![0u64; n];
    for &s in &sources {
        let tree = overlay.multicast_tree(s);
        for (m, l) in cam_load.iter_mut().enumerate() {
            *l += tree.fanout(m) as u64;
        }
    }

    let percentiles = [0.0f64, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
    let stat = |loads: &mut Vec<u64>| -> Vec<f64> {
        loads.sort_unstable();
        percentiles
            .iter()
            .map(|&p| {
                let idx = ((p / 100.0) * (loads.len() - 1) as f64).round() as usize;
                loads[idx] as f64 / messages as f64
            })
            .collect()
    };
    let shared_stats = stat(&mut shared_load.clone());
    let cam_stats = stat(&mut cam_load.clone());

    let gini_shared =
        cam_metrics::fairness::gini(&shared_load.iter().map(|&l| l as f64).collect::<Vec<_>>());
    let gini_cam =
        cam_metrics::fairness::gini(&cam_load.iter().map(|&l| l as f64).collect::<Vec<_>>());
    let mut table = DataTable::new(
        format!(
            "Ext-E: forwarding load per message — shared tree (gini {gini_shared:.2}) vs              per-source trees (gini {gini_cam:.2})"
        ),
        "percentile",
    );
    let mut shared_series = DataSeries::new("shared tree (§5.1 tree-building)");
    let mut cam_series = DataSeries::new("per-source trees (CAM)");
    for ((&p, s), c) in percentiles.iter().zip(shared_stats).zip(cam_stats) {
        shared_series.push(p, s);
        cam_series.push(p, c);
    }
    table.push(shared_series);
    table.push(cam_series);
    table
}

/// Ext-F: multicast delivery while a Poisson churn trace (joins, leaves,
/// crashes) plays against the live overlay — the "highly dynamic
/// membership" setting of the paper's introduction.
pub fn churn(opts: &Options) -> DataTable {
    use cam_workload::ChurnTrace;
    let n = opts.n.min(600);
    let mut table = DataTable::new(
        "Ext-F: delivery ratio under live churn (snapshot after each 10% of the trace)",
        "trace_progress",
    );

    let run = |region_split: bool, seed: u64| -> Vec<(f64, f64)> {
        let scenario = Scenario::paper_default(seed).with_n(n);
        let members: Vec<_> = scenario.members().iter().collect();
        let space = cam_ring::IdSpace::PAPER;
        let latency = LatencyModel::Uniform {
            min: Duration::from_millis(20),
            max: Duration::from_millis(80),
        };
        // Joining members draw from the scenario's configured workload,
        // so churn cannot silently skew bandwidths or capacities.
        let trace = ChurnTrace::generate_with(
            space,
            &members,
            120,
            400_000.0,
            0.5,
            seed ^ 0xF,
            &scenario.bandwidth,
            &scenario.capacity,
        );
        let mut deliveries = Vec::new();
        if region_split {
            let mut net = DynamicNetwork::converged(
                space,
                &members,
                CamChordProtocol,
                seed,
                latency.clone(),
            );
            play_trace(&mut net, &trace, true, &mut deliveries, CamChordProtocol);
        } else {
            let mut net = DynamicNetwork::converged(
                space,
                &members,
                CamKoordeProtocol,
                seed,
                latency.clone(),
            );
            play_trace(&mut net, &trace, false, &mut deliveries, CamKoordeProtocol);
        }
        deliveries
            .iter()
            .enumerate()
            .map(|(i, ratio)| ((i + 1) as f64 * 10.0, *ratio))
            .collect()
    };

    let mut chord = DataSeries::new("CAM-Chord");
    for (x, y) in run(true, opts.sub_seed(0xF1)) {
        chord.push(x, y);
    }
    let mut koorde = DataSeries::new("CAM-Koorde");
    for (x, y) in run(false, opts.sub_seed(0xF2)) {
        koorde.push(x, y);
    }
    table.push(chord);
    table.push(koorde);
    table
}

fn play_trace<P: DhtProtocol>(
    net: &mut DynamicNetwork<P>,
    trace: &cam_workload::ChurnTrace,
    region_split: bool,
    deliveries: &mut Vec<f64>,
    protocol: P,
) {
    use cam_workload::ChurnKind;
    let chunk = trace.events.len() / 10;
    for (i, event) in trace.events.iter().enumerate() {
        let at = cam_sim::time::SimTime(event.at_micros);
        if at > net.sim.now() {
            net.sim.run_until(at);
        }
        match event.kind {
            ChurnKind::Join(member) => {
                let _ = net.inject_join(member, protocol.clone());
            }
            ChurnKind::Leave(id) | ChurnKind::Crash(id) => {
                let _ = net.remove_member(id);
            }
        }
        if chunk > 0 && (i + 1) % chunk == 0 {
            // Let maintenance breathe briefly, then snapshot delivery from
            // a random live source.
            net.sim.run_until(net.sim.now() + Duration::from_secs(5));
            let source = net
                .actors()
                .iter()
                .map(|(_, a)| *a)
                .find(|a| net.sim.is_alive(*a))
                .expect("some member survives");
            let payload = net.start_multicast(source, region_split);
            net.sim.run_until(net.sim.now() + Duration::from_secs(10));
            deliveries.push(net.delivery_ratio(payload));
        }
    }
}

/// Ext-H: multicast delivery under random per-message loss — the
/// "reliable delivery" concern of Section 1. Region-splitting trees lose
/// an entire subtree per dropped control message; flooding's redundant
/// edges mask most losses; anti-entropy pull gossip (pbcast-style, see
/// `DhtActor::set_anti_entropy`) converges either system back to full
/// delivery.
pub fn loss(opts: &Options) -> DataTable {
    let n = opts.n.min(1_000);
    let rates = [0.0f64, 0.01, 0.02, 0.05, 0.10];
    let mut table = DataTable::new(
        "Ext-H: delivery ratio vs per-message loss probability",
        "loss_probability",
    );
    let results = parallel_sweep(rates.to_vec(), |&rate| {
        let seed = opts.sub_seed((rate * 1000.0) as u64);
        let members: Vec<_> = Scenario::paper_default(seed)
            .with_n(n)
            .members()
            .iter()
            .collect();
        let latency = LatencyModel::Uniform {
            min: Duration::from_millis(20),
            max: Duration::from_millis(80),
        };
        let space = cam_ring::IdSpace::PAPER;
        let run = |region_split: bool, repair: bool| -> f64 {
            let mut ratios = Vec::new();
            if region_split {
                let mut net = DynamicNetwork::converged(
                    space,
                    &members,
                    CamChordProtocol,
                    seed,
                    latency.clone(),
                );
                net.sim.set_loss_probability(rate);
                if repair {
                    net.enable_anti_entropy();
                }
                measure_loss(&mut net, true, repair, &mut ratios);
            } else {
                let mut net = DynamicNetwork::converged(
                    space,
                    &members,
                    CamKoordeProtocol,
                    seed,
                    latency.clone(),
                );
                net.sim.set_loss_probability(rate);
                if repair {
                    net.enable_anti_entropy();
                }
                measure_loss(&mut net, false, repair, &mut ratios);
            }
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        (run(true, false), run(false, false), run(true, true))
    });
    let mut chord = DataSeries::new("CAM-Chord (region trees)");
    let mut koorde = DataSeries::new("CAM-Koorde (flooding)");
    let mut repaired = DataSeries::new("CAM-Chord + anti-entropy");
    for (&rate, (c, k, r)) in rates.iter().zip(results) {
        chord.push(rate, c);
        koorde.push(rate, k);
        repaired.push(rate, r);
    }
    table.push(chord);
    table.push(koorde);
    table.push(repaired);
    table
}

fn measure_loss<P: DhtProtocol>(
    net: &mut DynamicNetwork<P>,
    region_split: bool,
    repair_window: bool,
    ratios: &mut Vec<f64>,
) {
    let source = net.actors()[0].1;
    for _ in 0..3 {
        let payload = net.start_multicast(source, region_split);
        let wait = if repair_window { 60 } else { 15 };
        net.sim.run_until(net.sim.now() + Duration::from_secs(wait));
        ratios.push(net.delivery_ratio(payload));
    }
}

/// Ext-I: the paper's Theorems 1–6 as curves next to measurements — the
/// analytic expected path lengths vs the simulated averages across
/// capacities (the quantitative backing for Figure 11's reference line).
pub fn theory(opts: &Options) -> DataTable {
    use cam_core::theory;
    let mut table = DataTable::new(
        "Ext-I: theorem formulas vs measured average multicast path lengths",
        "avg_capacity",
    );
    let capacities: Vec<u32> = vec![4, 6, 8, 12, 20, 40, 80];
    let n = opts.n;
    let results = parallel_sweep(capacities.clone(), |&mean_c| {
        let hi = if mean_c <= 4 { 4 } else { 2 * mean_c - 4 };
        let group = Scenario::paper_default(opts.sub_seed(u64::from(mean_c) + 0x71))
            .with_n(n)
            .with_capacity(CapacityAssignment::Uniform { lo: 4, hi })
            .members();
        let caps: Vec<u32> = group.iter().map(|m| m.capacity).collect();
        let chord = sample_trees(
            &CamChord::new(group.clone()),
            opts.sources,
            opts.sub_seed(1),
        )
        .avg_path_len
        .mean();
        let koorde = sample_trees(&CamKoorde::new(group), opts.sources, opts.sub_seed(2))
            .avg_path_len
            .mean();
        let t_chord = theory::expected_cam_chord_path(n, &caps);
        let t_koorde = theory::expected_cam_koorde_path((n as f64).log2(), &caps);
        (chord, t_chord, koorde, t_koorde)
    });
    let mut mc = DataSeries::new("CAM-Chord measured");
    let mut tc = DataSeries::new("CAM-Chord theory (Thm 3)");
    let mut mk = DataSeries::new("CAM-Koorde measured");
    let mut tk = DataSeries::new("CAM-Koorde theory (Thm 5)");
    for (&c, (m1, t1, m2, t2)) in capacities.iter().zip(results) {
        mc.push(f64::from(c), m1);
        tc.push(f64::from(c), t1);
        mk.push(f64::from(c), m2);
        tk.push(f64::from(c), t2);
    }
    table.push(mc);
    table.push(tc);
    table.push(mk);
    table.push(tk);
    table
}

/// Ext-K: how *local* the implicit trees' adaptation to membership change
/// is — the paper's "dynamic membership" claim made quantitative. One
/// member joins (or leaves); the implicit tree from the same source is
/// recomputed; we count how many of the surviving members changed parent.
pub fn tree_stability(opts: &Options) -> DataTable {
    use rand::{Rng, SeedableRng};
    let n = opts.n.min(20_000);
    let trials = 20usize;
    let mut table = DataTable::new(
        format!("Ext-K: members (of {n}) whose tree parent changes after one join/leave"),
        "trial",
    );
    let base = Scenario::paper_default(opts.sub_seed(0xB1))
        .with_n(n)
        .members();
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.sub_seed(0xB2));

    let mut chord_join = DataSeries::new("CAM-Chord join");
    let mut chord_leave = DataSeries::new("CAM-Chord leave");
    let mut koorde_join = DataSeries::new("CAM-Koorde join");
    let mut koorde_leave = DataSeries::new("CAM-Koorde leave");

    for t in 0..trials {
        let source_id = base.member(rng.gen_range(0..base.len())).id;
        // Join: a fresh random member.
        let newcomer = loop {
            let id = cam_ring::Id(rng.gen_range(0..base.space().size()));
            if base.index_of(id).is_none() {
                break cam_overlay::Member {
                    id,
                    capacity: rng.gen_range(4..=10),
                    upload_kbps: rng.gen_range(400.0..=1000.0),
                };
            }
        };
        let joined = base.inserted(newcomer).expect("fresh id");
        // Leave: a random member other than the source.
        let leaver = loop {
            let m = base.member(rng.gen_range(0..base.len())).id;
            if m != source_id {
                break m;
            }
        };
        let left = base.removed(leaver).expect("non-empty");

        chord_join.push(t as f64, parent_churn_chord(&base, &joined, source_id));
        chord_leave.push(t as f64, parent_churn_chord(&base, &left, source_id));
        koorde_join.push(t as f64, parent_churn_koorde(&base, &joined, source_id));
        koorde_leave.push(t as f64, parent_churn_koorde(&base, &left, source_id));
    }
    table.push(chord_join);
    table.push(chord_leave);
    table.push(koorde_join);
    table.push(koorde_leave);
    table
}

fn parent_churn_chord(
    before: &cam_overlay::MemberSet,
    after: &cam_overlay::MemberSet,
    source_id: cam_ring::Id,
) -> f64 {
    let t1 = CamChord::new(before.clone())
        .multicast_tree(before.index_of(source_id).expect("source present"));
    let t2 = CamChord::new(after.clone())
        .multicast_tree(after.index_of(source_id).expect("source present"));
    parent_churn(before, after, &t1, &t2)
}

fn parent_churn_koorde(
    before: &cam_overlay::MemberSet,
    after: &cam_overlay::MemberSet,
    source_id: cam_ring::Id,
) -> f64 {
    let t1 = CamKoorde::new(before.clone())
        .multicast_tree(before.index_of(source_id).expect("source present"));
    let t2 = CamKoorde::new(after.clone())
        .multicast_tree(after.index_of(source_id).expect("source present"));
    parent_churn(before, after, &t1, &t2)
}

/// Number of members present in both groups whose tree parent (by
/// identifier) differs between the two trees.
fn parent_churn(
    g1: &cam_overlay::MemberSet,
    g2: &cam_overlay::MemberSet,
    t1: &cam_overlay::MulticastTree,
    t2: &cam_overlay::MulticastTree,
) -> f64 {
    let mut changed = 0usize;
    for i1 in 0..g1.len() {
        let id = g1.member(i1).id;
        let Some(i2) = g2.index_of(id) else { continue };
        let p1 = t1.parent_of(i1).map(|p| g1.member(p).id);
        let p2 = t2.parent_of(i2).map(|p| g2.member(p).id);
        if p1 != p2 {
            changed += 1;
        }
    }
    changed as f64
}

/// Ext-J: capacity-awareness under *realistic* (heavy-tailed) bandwidth
/// heterogeneity. The paper sweeps uniform ranges (Figure 7); measurement
/// studies report Pareto upload capacities, where the mean/minimum gap —
/// and hence CAM's advantage — is far larger.
pub fn heterogeneity(opts: &Options) -> DataTable {
    use cam_workload::BandwidthDist;
    let mean = 700.0;
    let cases: Vec<(&str, BandwidthDist)> = vec![
        ("uniform [400,1000]", BandwidthDist::PAPER),
        ("pareto alpha=3", BandwidthDist::pareto_with_mean(mean, 3.0)),
        ("pareto alpha=2", BandwidthDist::pareto_with_mean(mean, 2.0)),
        (
            "pareto alpha=1.5",
            BandwidthDist::pareto_with_mean(mean, 1.5),
        ),
    ];
    let mut table = DataTable::new(
        "Ext-J: CAM-Chord throughput improvement under heavy-tailed bandwidths",
        "case_index",
    );
    let results = parallel_sweep(cases.clone(), |(_, dist)| {
        let seed = opts.sub_seed(dist.mean() as u64 ^ 0x7A);
        // Degree 20 keeps even the slowest Pareto hosts above the c ≥ 4
        // clamp (p = 35 kbps), so the heterogeneity effect is not capped.
        let degree = 20u32;
        let aware = Scenario::paper_default(seed)
            .with_n(opts.n)
            .with_bandwidth(*dist)
            .with_capacity(CapacityAssignment::PerLink {
                p: dist.mean() / f64::from(degree),
                min: 4,
                max: 4096,
            })
            .members();
        let oblivious = Scenario::paper_default(seed)
            .with_n(opts.n)
            .with_bandwidth(*dist)
            .with_capacity(CapacityAssignment::Constant(degree))
            .members();
        let a = sample_trees(&CamChord::new(aware), opts.sources, seed ^ 1)
            .throughput_kbps
            .mean();
        let o = sample_trees(&CamChord::new(oblivious), opts.sources, seed ^ 2)
            .throughput_kbps
            .mean();
        (a, o)
    });
    let mut aware_s = DataSeries::new("capacity-aware (kbps)");
    let mut obliv_s = DataSeries::new("capacity-oblivious (kbps)");
    let mut ratio_s = DataSeries::new("improvement ratio");
    for (i, (a, o)) in results.into_iter().enumerate() {
        aware_s.push(i as f64, a);
        obliv_s.push(i as f64, o);
        ratio_s.push(i as f64, a / o);
    }
    table.title = format!(
        "Ext-J heterogeneity: {}",
        cases
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{i}={name}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    table.push(aware_s);
    table.push(obliv_s);
    table.push(ratio_s);
    table
}

/// Ext-G: what §5.2's Proximity Neighbor Selection buys — mean multicast
/// path *delay* (planar-coordinate latency model) with and without
/// least-delay-first neighbor choice, at equal hop counts.
pub fn proximity(opts: &Options) -> DataTable {
    use rand::{Rng, SeedableRng};
    let n = opts.n.min(10_000);
    let group = Scenario::paper_default(opts.sub_seed(0xA1))
        .with_n(n)
        .members();
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.sub_seed(0xA2));
    let coords: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let delay = move |a: usize, b: usize| {
        let (xa, ya) = coords[a];
        let (xb, yb) = coords[b];
        5.0 + 100.0 * ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt()
    };

    let prox = ProximityCamChord::new(group.clone(), &delay);
    let plain = CamChord::new(group.clone());

    let mut table = DataTable::new(
        "Ext-G: proximity neighbor selection — mean path delay and hops per source",
        "source_index",
    );
    let mut plain_ms = DataSeries::new("plain delay (ms)");
    let mut prox_ms = DataSeries::new("proximity delay (ms)");
    let mut plain_hops = DataSeries::new("plain hops");
    let mut prox_hops = DataSeries::new("proximity hops");
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(opts.sub_seed(0xA3));
    for i in 0..opts.sources.max(3) {
        let src = rng2.gen_range(0..n);
        let pt = prox.multicast_tree(src);
        let bt = plain.multicast_tree(src);
        debug_assert!(pt.is_complete() && bt.is_complete());
        prox_ms.push(i as f64, prox.mean_path_delay_ms(&pt));
        plain_ms.push(i as f64, prox.mean_path_delay_ms(&bt));
        prox_hops.push(i as f64, pt.stats().avg_path_len);
        plain_hops.push(i as f64, bt.stats().avg_path_len);
    }
    table.push(plain_ms);
    table.push(prox_ms);
    table.push(plain_hops);
    table.push(prox_hops);
    table
}

/// Ext-L: multi-group pub/sub — delivery and capacity fairness as the
/// group count scales over one shared universe (DESIGN.md §3g).
///
/// A seeded Zipf workload (`MultiGroupScenario::zipf_subscriptions`)
/// creates the groups and drives subscriptions through the
/// [`GroupRegistry`](cam_pubsub::GroupRegistry)'s admission control;
/// every publish is then folded into a per-group delivery census. Three
/// measurements per group count: mean per-group delivery ratio, the
/// admitted fraction of subscription attempts, and Jain's index over the
/// per-node aggregate child load (1.0 = perfectly even forwarding load
/// across the universe). The global invariant — no node's total children
/// across all groups exceeds its `c_x` — is asserted, not measured.
pub fn multigroup(opts: &Options) -> DataTable {
    use cam_pubsub::GroupRegistry;
    use cam_trace::GroupDeliveryCensus;
    use cam_workload::{GroupOp, MultiGroupScenario};

    let n = opts.n.min(10_000);
    let group_counts = [8usize, 32, 128, 512];
    let mut table = DataTable::new(
        format!("Ext-L: multi-group pub/sub over a shared {n}-node universe"),
        "groups",
    );
    let mut delivery = DataSeries::new("mean per-group delivery ratio");
    let mut admitted_frac = DataSeries::new("admitted subscription fraction");
    let mut jain_load = DataSeries::new("jain index of per-node child load");
    for &groups in &group_counts {
        let universe = Scenario::paper_default(opts.sub_seed(0xF1))
            .with_n(n)
            .members();
        let mut reg = GroupRegistry::new(universe);
        let subscriptions = (groups * 25).min(2 * n);
        let ops = MultiGroupScenario::new(n, groups, opts.sub_seed(0xF2))
            .zipf_subscriptions(subscriptions);
        let (mut attempts, mut admitted) = (0u64, 0u64);
        let mut census = GroupDeliveryCensus::default();
        for op in ops {
            match op {
                GroupOp::Create { group } => {
                    reg.create_group(group).expect("generator emits fresh ids");
                }
                GroupOp::Subscribe { group, node } => {
                    attempts += 1;
                    let a = reg.subscribe(group, node).expect("group was created");
                    admitted += u64::from(a.is_admitted());
                }
                GroupOp::Unsubscribe { group, node } => {
                    reg.unsubscribe(group, node).expect("group was created");
                }
                GroupOp::Publish { group } => {
                    reg.publish_census(group, &mut census)
                        .expect("group was created");
                }
            }
        }
        reg.ledger()
            .verify()
            .expect("no node past its global capacity");
        let ratios = census.ratios();
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let load: Vec<f64> = (0..n).map(|i| f64::from(reg.ledger().charged(i))).collect();
        delivery.push(groups as f64, mean_ratio);
        admitted_frac.push(groups as f64, admitted as f64 / attempts.max(1) as f64);
        jain_load.push(groups as f64, cam_metrics::fairness::jain(&load));
    }
    table.push(delivery);
    table.push(admitted_frac);
    table.push(jain_load);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Options {
        let mut o = Options::quick();
        o.n = 400;
        o.sources = 2;
        o
    }

    #[test]
    fn resilience_flooding_beats_region_split_under_crashes() {
        let mut opts = tiny();
        opts.n = 300;
        let table = resilience(&opts);
        let chord = table.series_named("CAM-Chord (no repair)").unwrap();
        let koorde = table.series_named("CAM-Koorde (no repair)").unwrap();
        // With no failures both deliver everywhere.
        assert!(chord.y_near(0.0).unwrap() > 0.999);
        assert!(koorde.y_near(0.0).unwrap() > 0.999);
        // At 20% crashes, flooding shows more redundancy than region trees.
        let c20 = chord.y_near(0.2).unwrap();
        let k20 = koorde.y_near(0.2).unwrap();
        assert!(
            k20 >= c20,
            "flooding ({k20:.3}) should be at least as robust as region trees ({c20:.3})"
        );
        // Repair brings CAM-Chord back up.
        let repaired = table.series_named("CAM-Chord (after repair)").unwrap();
        assert!(repaired.y_near(0.2).unwrap() >= c20);
    }

    #[test]
    fn overhead_chord_exceeds_koorde() {
        let mut opts = tiny();
        opts.n = 800;
        let table = overhead(&opts);
        let chord = table.series_named("CAM-Chord neighbors").unwrap();
        let koorde = table.series_named("CAM-Koorde neighbors").unwrap();
        // At small capacity the log n / log c factor dominates.
        assert!(chord.y_near(4.0).unwrap() > koorde.y_near(4.0).unwrap());
        // CAM-Koorde neighbor count is bounded by c.
        for &(c, count) in &koorde.points {
            assert!(count <= c, "koorde neighbors {count} exceed capacity {c}");
        }
    }

    #[test]
    fn ablation_runs() {
        let table = ablation(&tiny());
        assert_eq!(table.series[0].points.len(), 4);
        for &(_, v) in &table.series[0].points {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn load_balance_shared_tree_concentrates() {
        let mut opts = tiny();
        opts.n = 1_000;
        let table = load_balance(&opts);
        let shared = table
            .series_named("shared tree (§5.1 tree-building)")
            .unwrap();
        let cam = table.series_named("per-source trees (CAM)").unwrap();
        // Median member: shared tree ≈ 0 (leaves are the majority), CAM > 0.
        let median_shared = shared.y_near(50.0).unwrap();
        let median_cam = cam.y_near(50.0).unwrap();
        assert!(
            median_shared <= median_cam,
            "shared {median_shared} vs cam {median_cam}"
        );
        // Max load: shared tree's hottest node far above the CAM's.
        assert!(shared.y_near(100.0).unwrap() > cam.y_near(100.0).unwrap());
    }

    #[test]
    fn churn_keeps_delivery_high() {
        let mut opts = tiny();
        opts.n = 250;
        let table = churn(&opts);
        for name in ["CAM-Chord", "CAM-Koorde"] {
            let s = table.series_named(name).unwrap();
            assert!(!s.points.is_empty());
            let mean: f64 =
                s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64;
            assert!(mean > 0.80, "{name}: mean delivery {mean:.3} under churn");
        }
    }

    #[test]
    fn proximity_cuts_delay_not_hops() {
        let mut opts = tiny();
        opts.n = 800;
        let table = proximity(&opts);
        let plain = table.series_named("plain delay (ms)").unwrap();
        let prox = table.series_named("proximity delay (ms)").unwrap();
        let mean = |s: &cam_metrics::DataSeries| {
            s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64
        };
        assert!(
            mean(prox) < mean(plain),
            "proximity {:.1}ms should beat plain {:.1}ms",
            mean(prox),
            mean(plain)
        );
    }

    #[test]
    fn implicit_trees_adapt_locally() {
        let mut opts = tiny();
        opts.n = 2_000;
        let table = tree_stability(&opts);
        for name in ["CAM-Chord join", "CAM-Chord leave"] {
            let s = table.series_named(name).unwrap();
            let mean: f64 =
                s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64;
            // A single membership change rewires O(c) parents, not O(n).
            assert!(
                mean < 30.0,
                "{name}: a single membership change rewired {mean:.1} parents"
            );
        }
    }

    #[test]
    fn heavy_tails_widen_cam_advantage() {
        let mut opts = tiny();
        opts.n = 2_000;
        opts.sources = 2;
        let table = heterogeneity(&opts);
        let ratio = table.series_named("improvement ratio").unwrap();
        let uniform = ratio.y_near(0.0).unwrap();
        let heavy = ratio.y_near(3.0).unwrap();
        assert!(uniform > 1.2, "uniform case should already favor CAM");
        assert!(
            heavy > uniform,
            "heavier tail should widen the gap: {heavy:.2} vs {uniform:.2}"
        );
    }

    #[test]
    fn loss_flooding_degrades_gracefully() {
        let mut opts = tiny();
        opts.n = 250;
        let table = loss(&opts);
        let chord = table.series_named("CAM-Chord (region trees)").unwrap();
        let koorde = table.series_named("CAM-Koorde (flooding)").unwrap();
        // No loss → full delivery for both.
        assert!(chord.y_near(0.0).unwrap() > 0.999);
        assert!(koorde.y_near(0.0).unwrap() > 0.999);
        // At 5% loss flooding holds up better than region trees.
        let c = chord.y_near(0.05).unwrap();
        let k = koorde.y_near(0.05).unwrap();
        assert!(k >= c, "flooding {k:.3} should be ≥ region trees {c:.3}");
        assert!(k > 0.9, "flooding should mask 5% loss: {k:.3}");
        // Anti-entropy converges region trees back to ~full delivery even
        // at 10% loss.
        let repaired = table.series_named("CAM-Chord + anti-entropy").unwrap();
        let r = repaired.y_near(0.10).unwrap();
        assert!(r > 0.99, "anti-entropy should repair losses: {r:.3}");
    }

    #[test]
    fn theory_tracks_measurement_shape() {
        let mut opts = tiny();
        opts.n = 2_000;
        opts.sources = 2;
        let table = theory(&opts);
        // Measured and theoretical curves are both decreasing and within a
        // small constant factor of each other.
        for (measured, predicted) in [
            ("CAM-Chord measured", "CAM-Chord theory (Thm 3)"),
            ("CAM-Koorde measured", "CAM-Koorde theory (Thm 5)"),
        ] {
            let m = table.series_named(measured).unwrap();
            let t = table.series_named(predicted).unwrap();
            assert!(m.points.first().unwrap().1 > m.points.last().unwrap().1);
            for (&(c, mv), &(_, tv)) in m.points.iter().zip(&t.points) {
                let ratio = mv / tv;
                assert!(
                    (0.2..5.0).contains(&ratio),
                    "{measured} at c={c}: measured {mv:.2} vs theory {tv:.2}"
                );
            }
        }
    }

    #[test]
    fn multigroup_sweep_is_sound() {
        let mut opts = tiny();
        opts.n = 600;
        let table = multigroup(&opts);
        let delivery = table.series_named("mean per-group delivery ratio").unwrap();
        let admitted = table
            .series_named("admitted subscription fraction")
            .unwrap();
        let jain = table
            .series_named("jain index of per-node child load")
            .unwrap();
        for s in [delivery, admitted, jain] {
            assert_eq!(s.points.len(), 4, "{}", s.name);
            for &(g, y) in &s.points {
                assert!((0.0..=1.0).contains(&y), "{} at {g} groups: {y}", s.name);
            }
        }
        // With capacity to spare the workload should be overwhelmingly
        // admitted and delivered.
        assert!(admitted.points[0].1 > 0.9, "{:?}", admitted.points);
        assert!(delivery.points[0].1 > 0.9, "{:?}", delivery.points);
    }

    #[test]
    fn lookup_hops_scale_sublinearly() {
        let mut opts = tiny();
        opts.n = 2_000;
        let table = lookup_hops(&opts);
        for s in &table.series {
            let (n0, h0) = s.points[0];
            let (n1, h1) = *s.points.last().unwrap();
            assert!(
                h1 < h0 * (n1 / n0).sqrt().max(2.0) + 8.0,
                "{}: hops grew too fast ({h0} @ {n0} → {h1} @ {n1})",
                s.name
            );
        }
    }
}
