//! Figure 7: throughput improvement ratio (CAM over capacity-oblivious
//! baseline) as the upload-bandwidth range `[a, b]` widens.
//!
//! The lower bound is fixed at `a = 400` kbps; the upper bound `b` sweeps
//! 800–1600 kbps. CAMs set `c_x = ⌊B_x/p⌋` with `p` chosen so the mean
//! capacity matches the baselines' uniform degree, isolating capacity
//! *awareness* as the only difference. The paper reports the ratio growing
//! roughly like `(a+b)/2a` — the mean-to-minimum bandwidth ratio — which is
//! emitted as a reference series.

use cam_core::{CamChord, CamKoorde};
use cam_metrics::{DataSeries, DataTable};
use cam_workload::{BandwidthDist, CapacityAssignment, Scenario};

use crate::runner::{parallel_sweep, sample_trees, Options};

/// Upper bounds of the bandwidth range swept (kbps); `a` fixed at 400.
pub const UPPER_BOUNDS: [f64; 9] = [
    800.0, 900.0, 1000.0, 1100.0, 1200.0, 1300.0, 1400.0, 1500.0, 1600.0,
];

/// Baseline uniform degree (and CAM mean capacity) used for every point.
/// Chosen so the per-link target `p = mean/10` never pushes the slowest
/// host (400 kbps) below the CAM-Koorde minimum capacity of 4, which would
/// clamp the sweep.
const DEGREE: u32 = 10;

/// Runs the Figure 7 sweep.
pub fn run(opts: &Options) -> DataTable {
    let mut table = DataTable::new(
        "Figure 7: throughput improvement ratio vs upload-bandwidth range [400, b]",
        "upper_bound_kbps",
    );
    let points = parallel_sweep(UPPER_BOUNDS.to_vec(), |&b| {
        let bandwidth = BandwidthDist::Uniform { lo: 400.0, hi: b };
        let p = bandwidth.mean() / f64::from(DEGREE);
        let seed = opts.sub_seed(b as u64);

        let cam_group = Scenario::paper_default(seed)
            .with_n(opts.n)
            .with_bandwidth(bandwidth)
            .with_capacity(CapacityAssignment::PerLink {
                p,
                min: 4,
                max: 4096,
            })
            .members();
        let base_group = Scenario::paper_default(seed)
            .with_n(opts.n)
            .with_bandwidth(bandwidth)
            .with_capacity(CapacityAssignment::Constant(DEGREE))
            .members();

        let cam_chord = sample_trees(
            &CamChord::new(cam_group.clone()),
            opts.sources,
            opts.sub_seed(1),
        )
        .throughput_kbps
        .mean();
        // Baselines are the uniform-degree capacity-oblivious variants
        // (see the fig6 module docs for why).
        let chord = sample_trees(
            &CamChord::new(base_group.clone()),
            opts.sources,
            opts.sub_seed(2),
        )
        .throughput_kbps
        .mean();
        let cam_koorde =
            sample_trees(&CamKoorde::new(cam_group), opts.sources, opts.sub_seed(3))
                .throughput_kbps
                .mean();
        // The Koorde baseline is uniform-degree flooding (see fig6 docs).
        let koorde = sample_trees(&CamKoorde::new(base_group), opts.sources, opts.sub_seed(4))
            .throughput_kbps
            .mean();
        (cam_chord / chord, cam_koorde / koorde)
    });

    let mut chord_ratio = DataSeries::new("CAM-Chord over Chord");
    let mut koorde_ratio = DataSeries::new("CAM-Koorde over Koorde");
    let mut reference = DataSeries::new("(a+b)/2a reference");
    for (&b, (rc, rk)) in UPPER_BOUNDS.iter().zip(points) {
        chord_ratio.push(b, rc);
        koorde_ratio.push(b, rk);
        reference.push(b, (400.0 + b) / 800.0);
    }
    table.push(chord_ratio);
    table.push(koorde_ratio);
    table.push(reference);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_exceeds_one_and_grows() {
        let mut opts = Options::quick();
        opts.n = 1_500;
        opts.sources = 2;
        let table = run(&opts);
        let chord = table.series_named("CAM-Chord over Chord").unwrap();
        for &(b, ratio) in &chord.points {
            assert!(ratio > 1.0, "CAM should win at b={b}: ratio {ratio}");
        }
        let first = chord.points.first().unwrap().1;
        let last = chord.points.last().unwrap().1;
        assert!(
            last > first,
            "wider heterogeneity should widen the gap: {first} → {last}"
        );
    }
}
