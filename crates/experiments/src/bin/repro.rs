//! Regenerates the paper's figures (and the extension experiments) as
//! plain-text tables on stdout and CSV files under `results/`.
//!
//! ```text
//! repro [--quick] [--plot] [--n <size>] [--sources <k>] [--out <dir>]
//!       [--trace-out <file>] [FIGURE...]
//!
//! FIGURE: fig6 fig7 fig8 fig9 fig10 fig11 resilience overhead ablation
//!         lookup all        (default: all)
//! --quick     4,000-node groups instead of the paper's 100,000
//! --plot      also render each table as an ASCII chart
//! --n         explicit group size
//! --sources   multicast sources sampled per configuration
//! --out       output directory for CSVs (default: results)
//! --trace-out capture one Ext-A resilience run as Chrome Trace Event
//!             Format JSON at <file> (open in chrome://tracing/Perfetto);
//!             a text summary goes to stderr
//! ```

use std::process::ExitCode;

use cam_experiments::{ext, fig10, fig11, fig6, fig7, fig8, fig9, Options};
use cam_metrics::DataTable;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::paper();
    let mut out_dir = "results".to_string();
    let mut plot = false;
    let mut trace_out: Option<String> = None;
    let mut figures: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                let q = Options::quick();
                opts.n = q.n;
                opts.sources = q.sources;
            }
            "--n" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.n = n,
                None => return usage("--n needs an integer"),
            },
            "--sources" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.sources = s,
                None => return usage("--sources needs an integer"),
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = dir,
                None => return usage("--out needs a directory"),
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path),
                None => return usage("--trace-out needs a file path"),
            },
            "--plot" => plot = true,
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag {other}")),
            fig => figures.push(fig.to_string()),
        }
    }
    // `--trace-out` with no figure names is a pure trace capture; naming
    // figures (or `all`) alongside it runs both.
    if figures.iter().any(|f| f == "all") || (figures.is_empty() && trace_out.is_none()) {
        figures = [
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "resilience",
            "overhead",
            "ablation",
            "lookup",
            "load",
            "churn",
            "proximity",
            "loss",
            "theory",
            "heterogeneity",
            "stability",
            "multigroup",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!(
        "# n = {}, sources = {}, seed = {:#x}",
        opts.n, opts.sources, opts.seed
    );
    if let Some(path) = &trace_out {
        let started = std::time::Instant::now();
        let rec = ext::resilience_trace(&opts);
        eprint!("{}", rec.text_report());
        if let Err(e) = std::fs::write(path, rec.chrome_trace_json()) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!(
            "# wrote {path} ({} events, {:.1}s)",
            rec.len(),
            started.elapsed().as_secs_f64()
        );
    }
    for fig in &figures {
        let started = std::time::Instant::now();
        let table: DataTable = match fig.as_str() {
            "fig6" => fig6::run(&opts),
            "fig7" => fig7::run(&opts),
            "fig8" => fig8::run(&opts),
            "fig9" => fig9::run(&opts),
            "fig10" => fig10::run(&opts),
            "fig11" => fig11::run(&opts),
            "resilience" => ext::resilience(&opts),
            "overhead" => ext::overhead(&opts),
            "ablation" => ext::ablation(&opts),
            "lookup" => ext::lookup_hops(&opts),
            "load" => ext::load_balance(&opts),
            "churn" => ext::churn(&opts),
            "proximity" => ext::proximity(&opts),
            "loss" => ext::loss(&opts),
            "theory" => ext::theory(&opts),
            "heterogeneity" => ext::heterogeneity(&opts),
            "stability" => ext::tree_stability(&opts),
            "multigroup" => ext::multigroup(&opts),
            other => return usage(&format!("unknown figure {other}")),
        };
        println!("{}", table.to_text());
        if plot {
            println!("{}", cam_metrics::ascii_plot(&table, 72, 20));
        }
        let path = format!("{out_dir}/{fig}.csv");
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("# wrote {path} ({:.1}s)", started.elapsed().as_secs_f64());
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--quick] [--plot] [--n SIZE] [--sources K] [--out DIR] \
         [--trace-out FILE] \
         [fig6|fig7|fig8|fig9|fig10|fig11|resilience|overhead|ablation|lookup|load|churn|proximity|loss|theory|heterogeneity|stability|multigroup|all]..."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
