//! Figure 10: path-length distribution in CAM-Koorde for widening capacity
//! ranges (the paper's legend omits `[4..60]`).

use cam_core::CamKoorde;
use cam_metrics::DataTable;

use crate::runner::Options;

/// The paper's capacity ranges for Figure 10 (upper bounds; lower fixed 4).
pub const RANGES: [u32; 8] = [4, 6, 8, 10, 20, 40, 100, 200];

/// Runs Figure 10: one distribution per capacity range.
pub fn run(opts: &Options) -> DataTable {
    crate::fig9::run_with(opts, &RANGES, CamKoorde::new, "CAM-Koorde")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_cover_all_members() {
        let mut opts = Options::quick();
        opts.n = 2_000;
        opts.sources = 2;
        let table = run(&opts);
        assert_eq!(table.series.len(), RANGES.len());
        for s in &table.series {
            let total: f64 = s.points.iter().map(|&(_, y)| y).sum();
            assert!(
                (total - (opts.n as f64 - 1.0)).abs() < 1.0,
                "series {} total {total}",
                s.name
            );
        }
    }
}
