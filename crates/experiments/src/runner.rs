//! Shared experiment plumbing: options, tree sampling, and sweeps.

use cam_metrics::TreeAggregator;
use cam_overlay::StaticOverlay;
use rand::{Rng, SeedableRng};

/// Knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Group size (the paper: 100,000).
    pub n: usize,
    /// Multicast sources sampled per configuration.
    pub sources: usize,
    /// Base seed; every configuration derives its own sub-seed.
    pub seed: u64,
}

impl Options {
    /// The paper's full scale: 100,000 members, 5 sources per point.
    pub fn paper() -> Self {
        Options {
            n: 100_000,
            sources: 5,
            seed: 0xCA11AB1E,
        }
    }

    /// A CI-sized variant (same code paths, ~3s total).
    pub fn quick() -> Self {
        Options {
            n: 4_000,
            sources: 3,
            seed: 0xCA11AB1E,
        }
    }

    /// Derives a per-configuration seed (stable across runs).
    pub fn sub_seed(&self, tag: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
    }
}

/// Builds `sources` multicast trees from distinct random sources of the
/// overlay and aggregates their statistics.
///
/// # Panics
///
/// Panics if the overlay has no members.
pub fn sample_trees(overlay: &dyn StaticOverlay, sources: usize, seed: u64) -> TreeAggregator {
    let n = overlay.members().len();
    assert!(n > 0, "empty overlay");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut agg = TreeAggregator::new();
    let mut used = std::collections::HashSet::new();
    for _ in 0..sources {
        let mut src = rng.gen_range(0..n);
        let mut spins = 0;
        while !used.insert(src) && spins < 16 {
            src = rng.gen_range(0..n);
            spins += 1;
        }
        let tree = overlay.multicast_tree(src);
        debug_assert!(tree.is_complete(), "incomplete multicast from {src}");
        agg.record(overlay.members(), &tree);
    }
    agg
}

/// Runs `f` over each item of `inputs` in parallel (scoped threads),
/// preserving input order in the output.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let mut out: Vec<Option<O>> = inputs.iter().map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (slot, input) in out.iter_mut().zip(&inputs) {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(input));
            });
        }
    })
    .expect("sweep worker panicked");
    out.into_iter().map(|o| o.expect("worker filled slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_core::CamChord;
    use cam_workload::Scenario;

    #[test]
    fn sample_trees_aggregates() {
        let group = Scenario::paper_default(1).with_n(300).members();
        let overlay = CamChord::new(group);
        let agg = sample_trees(&overlay, 4, 9);
        assert_eq!(agg.trees(), 4);
        assert_eq!(agg.incomplete, 0);
        assert!(agg.throughput_kbps.mean() > 0.0);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let out = parallel_sweep((0..32).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sub_seeds_differ() {
        let o = Options::quick();
        assert_ne!(o.sub_seed(1), o.sub_seed(2));
    }
}
