//! Shared experiment plumbing: options, tree sampling, and sweeps.
//!
//! The two parallel entry points — [`parallel_sweep`] over experiment
//! configurations and [`sample_trees`] over multicast sources — both run on
//! a fixed-size pool of scoped worker threads (one per available core) and
//! are *deterministic*: their output is bit-identical to the serial
//! equivalent, because work items are deterministic functions of their
//! input and results are folded in input order on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};

use cam_metrics::TreeAggregator;
use cam_overlay::{MulticastTree, StaticOverlay};
use rand::{Rng, SeedableRng};

/// Knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Group size (the paper: 100,000).
    pub n: usize,
    /// Multicast sources sampled per configuration.
    pub sources: usize,
    /// Base seed; every configuration derives its own sub-seed.
    pub seed: u64,
}

impl Options {
    /// The paper's full scale: 100,000 members, 5 sources per point.
    pub fn paper() -> Self {
        Options {
            n: 100_000,
            sources: 5,
            seed: 0xCA11AB1E,
        }
    }

    /// A CI-sized variant (same code paths, ~3s total).
    pub fn quick() -> Self {
        Options {
            n: 4_000,
            sources: 3,
            seed: 0xCA11AB1E,
        }
    }

    /// Derives a per-configuration seed (stable across runs).
    pub fn sub_seed(&self, tag: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
    }
}

/// Below this group size a multicast tree is too cheap to be worth shipping
/// to the worker pool; [`sample_trees`] stays on the calling thread.
const PARALLEL_SOURCES_MIN_N: usize = 2_000;

/// Samples `k` distinct member indices from `0..n` uniformly (`k` clamped
/// to `n`), in draw order — a sparse partial Fisher–Yates shuffle, so the
/// cost is `O(k)` regardless of `n` and every `k`-subset is equally likely.
///
/// Replaces the old bounded-retry sampler, which could repeat a source when
/// 16 consecutive redraws collided.
pub fn sample_distinct_sources(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Sparse view of the Fisher–Yates array: absent key i means slot i
    // still holds value i.
    let mut displaced: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.gen_range(i..n);
        let vj = displaced.get(&j).copied().unwrap_or(j);
        let vi = displaced.get(&i).copied().unwrap_or(i);
        displaced.insert(j, vi);
        out.push(vj);
    }
    out
}

/// Builds `sources` multicast trees from distinct random sources of the
/// overlay and aggregates their statistics.
///
/// On groups of at least [`PARALLEL_SOURCES_MIN_N`] members the trees are
/// built on the worker pool; the aggregate is bit-identical to
/// [`sample_trees_serial`] either way, because tree construction takes no
/// RNG and aggregation happens in source order on the calling thread.
///
/// # Panics
///
/// Panics if the overlay has no members.
pub fn sample_trees<O: StaticOverlay + ?Sized>(
    overlay: &O,
    sources: usize,
    seed: u64,
) -> TreeAggregator {
    let srcs = sample_distinct_sources(overlay.members().len(), sources, seed);
    let trees: Vec<MulticastTree> =
        if overlay.members().len() >= PARALLEL_SOURCES_MIN_N && srcs.len() >= 2 {
            parallel_sweep(srcs, |&src| overlay.multicast_tree(src))
        } else {
            srcs.iter()
                .map(|&src| overlay.multicast_tree(src))
                .collect()
        };
    aggregate(overlay, &trees)
}

/// [`sample_trees`] without materializing any tree: each source runs the
/// overlay's [`multicast_stats`](StaticOverlay::multicast_stats) path
/// (streaming for CAM-Chord, materialize-and-summarize for the rest) and
/// only the `(TreeStats, throughput)` pairs travel back for aggregation.
///
/// The aggregate is bit-identical to [`sample_trees`] — same sources, same
/// statistics, folded in the same order — which is what makes million-member
/// sweeps affordable: peak memory is one tree's summary per in-flight
/// source instead of 20 MB of flat arrays each.
///
/// # Panics
///
/// Panics if the overlay has no members.
pub fn sample_tree_stats<O: StaticOverlay + ?Sized>(
    overlay: &O,
    sources: usize,
    seed: u64,
) -> TreeAggregator {
    assert!(!overlay.members().is_empty(), "empty overlay");
    let srcs = sample_distinct_sources(overlay.members().len(), sources, seed);
    let stats: Vec<(cam_overlay::TreeStats, f64)> =
        if overlay.members().len() >= PARALLEL_SOURCES_MIN_N && srcs.len() >= 2 {
            parallel_sweep(srcs, |&src| overlay.multicast_stats(src))
        } else {
            srcs.iter()
                .map(|&src| overlay.multicast_stats(src))
                .collect()
        };
    let mut agg = TreeAggregator::new();
    for (s, tput) in &stats {
        debug_assert!(
            s.delivered == s.group_size,
            "incomplete multicast ({} of {})",
            s.delivered,
            s.group_size
        );
        agg.record_stats(s, *tput);
    }
    agg
}

/// [`sample_trees`] pinned to the calling thread — the reference the
/// determinism tests compare against.
///
/// # Panics
///
/// Panics if the overlay has no members.
pub fn sample_trees_serial<O: StaticOverlay + ?Sized>(
    overlay: &O,
    sources: usize,
    seed: u64,
) -> TreeAggregator {
    let srcs = sample_distinct_sources(overlay.members().len(), sources, seed);
    let trees: Vec<MulticastTree> = srcs
        .iter()
        .map(|&src| overlay.multicast_tree(src))
        .collect();
    aggregate(overlay, &trees)
}

fn aggregate<O: StaticOverlay + ?Sized>(
    overlay: &O,
    trees: &[MulticastTree],
) -> TreeAggregator {
    assert!(!overlay.members().is_empty(), "empty overlay");
    let mut agg = TreeAggregator::new();
    for tree in trees {
        debug_assert!(
            tree.is_complete(),
            "incomplete multicast from {}",
            tree.source()
        );
        agg.record(overlay.members(), tree);
    }
    agg
}

/// Runs `f` over each item of `inputs` on a fixed-size worker pool (one
/// scoped thread per available core, never more than there are items),
/// preserving input order in the output.
///
/// Workers claim items through a shared atomic counter, so uneven item
/// costs self-balance. Replaces the previous thread-per-input spawn, which
/// created `inputs.len()` OS threads regardless of core count.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    parallel_sweep_with_workers(inputs, f, workers)
}

/// [`parallel_sweep`] with an explicit pool size — lets the determinism
/// tests exercise the pooled path even on single-core machines (where
/// [`parallel_sweep`] would fall back to the serial loop).
pub fn parallel_sweep_with_workers<I, O, F>(inputs: Vec<I>, f: F, workers: usize) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&inputs[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_core::CamChord;
    use cam_workload::Scenario;

    #[test]
    fn sample_trees_aggregates() {
        let group = Scenario::paper_default(1).with_n(300).members();
        let overlay = CamChord::new(group);
        let agg = sample_trees(&overlay, 4, 9);
        assert_eq!(agg.trees(), 4);
        assert_eq!(agg.incomplete, 0);
        assert!(agg.throughput_kbps.mean() > 0.0);
    }

    /// The streaming sampler must reproduce the materialized sampler's
    /// aggregate exactly (TreeAggregator's PartialEq is bit-level on the
    /// f64 summaries).
    #[test]
    fn streaming_sampler_matches_materialized() {
        let group = Scenario::paper_default(5).with_n(2_500).members();
        let overlay = CamChord::new(group);
        let materialized = sample_trees(&overlay, 4, 77);
        let streamed = sample_tree_stats(&overlay, 4, 77);
        assert_eq!(streamed, materialized);
        assert_eq!(streamed.trees(), 4);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let out = parallel_sweep((0..32).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sub_seeds_differ() {
        let o = Options::quick();
        assert_ne!(o.sub_seed(1), o.sub_seed(2));
    }
}
