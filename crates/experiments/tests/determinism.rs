//! Pooled parallelism must be invisible in the results.
//!
//! The overhaul's contract: [`sample_trees`] and [`parallel_sweep`] produce
//! output *bit-identical* to their serial equivalents, regardless of worker
//! count or scheduling. `TreeAggregator`'s `PartialEq` compares every
//! accumulated float exactly, so these tests catch any reordering of
//! floating-point folds, not just gross divergence.

use cam_core::{CamChord, CamKoorde};
use cam_experiments::runner::{
    parallel_sweep, parallel_sweep_with_workers, sample_distinct_sources, sample_trees,
    sample_trees_serial,
};
use cam_overlay::StaticOverlay;
use cam_workload::Scenario;

/// Large enough that `sample_trees` takes the pooled path (the threshold is
/// 2,000 members).
const N: usize = 2_500;

#[test]
fn sample_trees_pooled_matches_serial_cam_chord() {
    let overlay = CamChord::new(Scenario::paper_default(21).with_n(N).members());
    for seed in [0u64, 7, 0xDEAD_BEEF] {
        let pooled = sample_trees(&overlay, 4, seed);
        let serial = sample_trees_serial(&overlay, 4, seed);
        assert_eq!(pooled, serial, "seed {seed}");
        assert_eq!(pooled.trees(), 4);
    }
}

#[test]
fn sample_trees_pooled_matches_serial_cam_koorde() {
    let overlay = CamKoorde::new(Scenario::paper_default(22).with_n(N).members());
    let pooled = sample_trees(&overlay, 3, 99);
    let serial = sample_trees_serial(&overlay, 3, 99);
    assert_eq!(pooled, serial);
}

/// Forcing various pool widths (beyond what this machine reports) must not
/// change the output — single-core CI would otherwise never exercise the
/// claim-loop merge.
#[test]
fn pooled_sweep_is_bit_identical_for_any_worker_count() {
    let overlay = CamChord::new(Scenario::paper_default(23).with_n(800).members());
    let sources: Vec<usize> = (0..16).map(|i| i * 50).collect();
    let reference: Vec<u64> = sources
        .iter()
        .map(|&s| overlay.multicast_tree(s).stats().depth as u64)
        .collect();
    for workers in [1usize, 2, 3, 8, 64] {
        let pooled = parallel_sweep_with_workers(
            sources.clone(),
            |&s| overlay.multicast_tree(s).stats().depth as u64,
            workers,
        );
        assert_eq!(pooled, reference, "workers={workers}");
    }
}

#[test]
fn auto_sized_sweep_matches_serial_map() {
    let out = parallel_sweep((0..100u64).collect(), |&x| x.wrapping_mul(x) ^ 13);
    let expected: Vec<u64> = (0..100u64).map(|x| x.wrapping_mul(x) ^ 13).collect();
    assert_eq!(out, expected);
}

#[test]
fn distinct_sources_are_distinct_and_stable() {
    for (n, k) in [(10usize, 10usize), (100, 5), (2_500, 5), (3, 7)] {
        let a = sample_distinct_sources(n, k, 42);
        let b = sample_distinct_sources(n, k, 42);
        assert_eq!(a, b, "same seed must reproduce the same draw");
        assert_eq!(a.len(), k.min(n));
        let uniq: std::collections::BTreeSet<usize> = a.iter().copied().collect();
        assert_eq!(
            uniq.len(),
            a.len(),
            "sources must be distinct (n={n}, k={k})"
        );
        assert!(a.iter().all(|&s| s < n));
    }
    assert_ne!(
        sample_distinct_sources(1_000, 5, 1),
        sample_distinct_sources(1_000, 5, 2),
        "different seeds should (overwhelmingly) differ"
    );
}

/// Exhaustive distinctness on a small space: even k == n is a permutation.
#[test]
fn distinct_sources_full_permutation() {
    for seed in 0..20u64 {
        let mut s = sample_distinct_sources(8, 8, seed);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>(), "seed {seed}");
    }
}
