//! Property tests for the Koorde baseline: imaginary-node lookup
//! correctness, flooding completeness, and the clustering behaviour the
//! CAM paper criticizes.

use cam_overlay::{Member, MemberSet, StaticOverlay};
use cam_ring::{Id, IdSpace};
use koorde_overlay::Koorde;
use proptest::prelude::*;

fn arb_group() -> impl Strategy<Value = (MemberSet, u32)> {
    (1usize..200, 0u32..4, 0u64..500).prop_map(|(n, deg_pow, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = IdSpace::new(13);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(rng.gen_range(0..space.size()));
        }
        let group = MemberSet::new(
            space,
            ids.iter()
                .map(|&v| Member::with_capacity(Id(v), 10))
                .collect(),
        )
        .unwrap();
        (group, 1 << (deg_pow + 1)) // degrees 2, 4, 8, 16
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Imaginary-node lookups find the oracle owner.
    #[test]
    fn lookup_oracle((group, degree) in arb_group(), key in 0u64..(1 << 13), origin_sel in 0usize..1000) {
        let koorde = Koorde::new(group.clone(), degree);
        let origin = origin_sel % group.len();
        let key = Id(key);
        prop_assert_eq!(koorde.lookup(origin, key).owner, group.owner_idx(key));
    }

    /// Flooding reaches every member exactly once from any source.
    #[test]
    fn flooding_exactly_once((group, degree) in arb_group(), src_sel in 0usize..1000) {
        let koorde = Koorde::new(group.clone(), degree);
        let src = src_sel % group.len();
        let tree = koorde.multicast_tree(src);
        prop_assert!(tree.is_complete());
        let edges: usize = (0..group.len()).map(|m| tree.fanout(m)).sum();
        prop_assert_eq!(edges, group.len() - 1);
    }

    /// Degree bound: pred + succ + ≤ k de Bruijn owners.
    #[test]
    fn degree_bound((group, degree) in arb_group(), m_sel in 0usize..1000) {
        let koorde = Koorde::new(group.clone(), degree);
        let m = m_sel % group.len();
        prop_assert!(koorde.neighbor_count(m) <= degree as usize + 2);
    }

    /// De Bruijn targets are k consecutive identifiers (the clustering the
    /// CAM paper contrasts with its spread-out right-shift neighbors).
    #[test]
    fn targets_are_consecutive(x in 0u64..(1 << 13), deg_pow in 0u32..4) {
        let space = IdSpace::new(13);
        let bits = deg_pow + 1;
        let targets = Koorde::debruijn_targets(space, bits, Id(x));
        prop_assert_eq!(targets.len(), 1usize << bits);
        for (j, t) in targets.iter().enumerate() {
            prop_assert_eq!(
                t.value(),
                space.reduce((x << bits) | j as u64).value()
            );
        }
        // Consecutive: max − min == k − 1 (no wraparound within a digit).
        let lo = targets.iter().map(|t| t.value()).min().unwrap();
        let hi = targets.iter().map(|t| t.value()).max().unwrap();
        prop_assert_eq!(hi - lo, (1u64 << bits) - 1);
    }
}

/// The clustering quantified: at n ≪ N the k consecutive targets resolve
/// to far fewer distinct owners than CAM-Koorde's spread-out targets.
#[test]
fn left_shift_clusters_versus_cam_spread() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let space = IdSpace::new(19);
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < 2_000 {
        ids.insert(rng.gen_range(0..space.size()));
    }
    let members: Vec<Member> = ids
        .iter()
        .map(|&v| Member::with_capacity(Id(v), 16))
        .collect();
    let group = MemberSet::new(space, members).unwrap();

    let koorde = Koorde::new(group.clone(), 16);
    let mean_koorde: f64 = (0..group.len())
        .map(|m| koorde.neighbor_count(m) as f64)
        .sum::<f64>()
        / group.len() as f64;

    let cam = cam_core::CamKoorde::new(group.clone());
    let mean_cam: f64 = (0..group.len())
        .map(|m| {
            use cam_overlay::StaticOverlay as _;
            cam.neighbor_count(m) as f64
        })
        .sum::<f64>()
        / group.len() as f64;

    assert!(
        mean_cam > mean_koorde * 2.0,
        "CAM spread ({mean_cam:.1}) should dwarf left-shift clustering ({mean_koorde:.1})"
    );
}
