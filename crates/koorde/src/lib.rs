#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Koorde baseline: the capacity-*oblivious* de Bruijn overlay the paper
//! compares CAM-Koorde against.
//!
//! Koorde (Kaashoek & Karger, IPTPS'03) embeds a degree-`k` de Bruijn graph
//! in the Chord identifier ring: node `x`'s de Bruijn neighbors are the
//! owners of `(k·x + j) mod N` for digits `j ∈ [0..k)` — identifiers
//! obtained by shifting `x` one digit to the **left** and replacing the
//! lowest digit. As the CAM paper points out (§4), these `k` identifiers
//! differ only in the last digit, so they cluster on the ring and often
//! resolve to the *same* physical node — one of the two deficiencies
//! CAM-Koorde fixes (the other being the uniform, capacity-blind degree).
//!
//! This implementation generalizes to any power-of-two degree `k = 2^s`
//! (digit = `s` bits). Lookup uses Koorde's imaginary-node routing: walk
//! successors until the imaginary identifier lies between the current node
//! and its successor, then take the de Bruijn edge, shifting the next `s`
//! key bits in from the right. Broadcast is constrained flooding over the
//! neighbor set (successor, predecessor, and the de Bruijn owners), the
//! same mechanism CAM-Koorde uses, so the two systems differ only in
//! topology.
//!
//! # Example
//!
//! ```
//! use koorde_overlay::Koorde;
//! use cam_overlay::{Member, MemberSet, StaticOverlay};
//! use cam_ring::{Id, IdSpace};
//!
//! let members: Vec<Member> = (0..64u64)
//!     .map(|i| Member::with_capacity(Id(i * 8 + 1), 8))
//!     .collect();
//! let koorde = Koorde::new(MemberSet::new(IdSpace::new(9), members)?, 4);
//! assert!(koorde.multicast_tree(7).is_complete());
//! # Ok::<(), cam_overlay::peer::BuildMemberSetError>(())
//! ```

use cam_overlay::{LookupResult, MemberSet, MulticastTree, StaticOverlay};
use cam_ring::{Id, IdSpace};

/// A resolved degree-`k` Koorde overlay (capacity-oblivious baseline).
#[derive(Debug, Clone)]
pub struct Koorde {
    group: MemberSet,
    /// Digit width in bits (`k = 2^s`).
    digit_bits: u32,
    /// Flooding adjacency, resolved at construction.
    adj: Vec<Vec<usize>>,
}

impl Koorde {
    /// Wraps a group as a degree-`k` Koorde overlay.
    ///
    /// # Panics
    ///
    /// Panics unless `degree` is a power of two with `2 ≤ degree < N`.
    pub fn new(group: MemberSet, degree: u32) -> Self {
        assert!(
            degree >= 2 && degree.is_power_of_two(),
            "Koorde degree must be a power of two >= 2, got {degree}"
        );
        assert!(
            u64::from(degree) < group.space().size(),
            "degree must be below the identifier-space size"
        );
        let digit_bits = degree.trailing_zeros();
        let adj = (0..group.len())
            .map(|i| Self::neighbor_indices(&group, digit_bits, i))
            .collect();
        Koorde {
            group,
            digit_bits,
            adj,
        }
    }

    /// The de Bruijn degree `k`.
    pub fn degree(&self) -> u32 {
        1 << self.digit_bits
    }

    /// De Bruijn neighbor identifiers of `x`: `(x·k + j) mod N`, `j < k`.
    /// Note how they differ only in the low digit — the clustering the CAM
    /// paper criticizes.
    pub fn debruijn_targets(space: IdSpace, digit_bits: u32, x: Id) -> Vec<Id> {
        let k = 1u64 << digit_bits;
        (0..k)
            .map(|j| space.reduce((x.value() << digit_bits) | j))
            .collect()
    }

    fn neighbor_indices(group: &MemberSet, digit_bits: u32, idx: usize) -> Vec<usize> {
        let x = group.member(idx).id;
        let mut out = vec![group.prev_idx(idx), group.next_idx(idx)];
        out.extend(
            Self::debruijn_targets(group.space(), digit_bits, x)
                .into_iter()
                .map(|t| group.owner_idx(t)),
        );
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| n != idx);
        out
    }

    /// The flooding adjacency of a member (pred, succ, de Bruijn owners).
    pub fn flood_neighbors(&self, member: usize) -> &[usize] {
        &self.adj[member]
    }
}

impl StaticOverlay for Koorde {
    fn members(&self) -> &MemberSet {
        &self.group
    }

    /// Koorde's imaginary-node lookup: successor-walk until the imaginary
    /// identifier is in `(x, successor]`, then take the de Bruijn edge —
    /// which points at the node *preceding* `k·x`, so the walk always stays
    /// behind the imaginary and catches up along successors — shifting the
    /// next key digit (MSB first) into the imaginary.
    fn lookup(&self, origin: usize, key: Id) -> LookupResult {
        let space = self.group.space();
        let b = space.bits();
        let s = self.digit_bits;
        let mut cur = origin;
        let mut path = vec![origin];
        // Imaginary identifier starts at the origin; `injected` counts how
        // many key bits have been shifted in.
        let mut imaginary = self.group.member(origin).id;
        let mut injected = 0u32;

        loop {
            let x = self.group.member(cur).id;
            let pred = self.group.member(self.group.prev_idx(cur)).id;
            if key == x || space.in_segment(key, pred, x) || self.group.len() == 1 {
                return LookupResult { owner: cur, path };
            }
            let succ_idx = self.group.next_idx(cur);
            let succ = self.group.member(succ_idx).id;
            if space.in_segment(key, x, succ) {
                return LookupResult {
                    owner: succ_idx,
                    path,
                };
            }

            let next =
                if injected < b && (imaginary == x || space.in_segment(imaginary, x, succ)) {
                    // De Bruijn hop: shift the next digit of the key into the
                    // imaginary node and follow the real de Bruijn pointer (the
                    // node preceding k·x).
                    let width = s.min(b - injected);
                    let digit = (key.value() >> (b - injected - width)) & ((1u64 << width) - 1);
                    imaginary = space.reduce((imaginary.value() << width) | digit);
                    injected += width;
                    // Degree-k Koorde keeps pointers to the k consecutive nodes
                    // starting at pred(k·x) precisely so this hop can land on
                    // the node whose segment contains the new imaginary
                    // (imaginary ∈ (k·x, k·succ + k] is spanned by those k
                    // pointers); jump straight to it.
                    let idx = self.group.predecessor_idx(imaginary);
                    if idx == cur {
                        succ_idx
                    } else {
                        idx
                    }
                } else {
                    // Walk the ring: either catching up to the imaginary or,
                    // once all bits are injected (imaginary == key), homing in
                    // on the owner.
                    succ_idx
                };
            cur = next;
            path.push(cur);
            debug_assert!(
                path.len() <= 2 * self.group.len() + 4 * b as usize,
                "Koorde lookup exceeded every bound"
            );
        }
    }

    fn multicast_tree(&self, source: usize) -> MulticastTree {
        let mut tree = MulticastTree::new(self.group.len(), source);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        while let Some(node) = queue.pop_front() {
            for &nb in &self.adj[node] {
                if tree.deliver(node, nb) {
                    queue.push_back(nb);
                }
            }
        }
        tree
    }

    fn neighbor_count(&self, member: usize) -> usize {
        self.adj[member].len()
    }

    fn name(&self) -> &'static str {
        "Koorde"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_overlay::Member;
    use rand::{Rng, SeedableRng};

    fn random_group(n: usize, bits: u32, seed: u64) -> MemberSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let space = IdSpace::new(bits);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(rng.gen_range(0..space.size()));
        }
        MemberSet::new(
            space,
            ids.iter()
                .map(|&v| Member::with_capacity(Id(v), 8))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn debruijn_targets_cluster() {
        // The k targets of one node are consecutive identifiers — the
        // clustering the CAM paper contrasts with its spread-out neighbors.
        let space = IdSpace::new(10);
        let t = Koorde::debruijn_targets(space, 2, Id(37));
        assert_eq!(
            t.iter().map(|i| i.value()).collect::<Vec<_>>(),
            vec![148, 149, 150, 151]
        );
    }

    #[test]
    fn lookup_matches_oracle() {
        let g = random_group(150, 12, 2);
        for degree in [2u32, 4, 16] {
            let koorde = Koorde::new(g.clone(), degree);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            for _ in 0..300 {
                let origin = rng.gen_range(0..g.len());
                let key = Id(rng.gen_range(0..g.space().size()));
                let r = koorde.lookup(origin, key);
                assert_eq!(r.owner, g.owner_idx(key), "degree {degree}");
            }
        }
    }

    #[test]
    fn lookup_hops_reasonable() {
        let g = random_group(2000, 19, 4);
        let koorde = Koorde::new(g.clone(), 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut total = 0u64;
        for _ in 0..200 {
            let origin = rng.gen_range(0..g.len());
            let key = Id(rng.gen_range(0..g.space().size()));
            total += u64::from(koorde.lookup(origin, key).hops());
        }
        let avg = total as f64 / 200.0;
        // ⌈19/3⌉ = 7 de Bruijn hops plus ring walks.
        assert!(avg < 25.0, "avg hops {avg}");
    }

    #[test]
    fn flooding_reaches_everyone() {
        for n in [1usize, 2, 5, 50, 400] {
            let g = random_group(n, 12, n as u64 + 17);
            let koorde = Koorde::new(g.clone(), 4);
            for src in [0, n - 1] {
                let t = koorde.multicast_tree(src);
                assert!(t.is_complete(), "n={n} src={src}");
            }
        }
    }

    #[test]
    fn uniform_degree_bounded_by_k_plus_ring() {
        let g = random_group(500, 16, 6);
        let koorde = Koorde::new(g.clone(), 8);
        for m in 0..g.len() {
            // pred + succ + ≤ k de Bruijn owners.
            assert!(koorde.neighbor_count(m) <= 10);
        }
    }

    #[test]
    fn effective_degree_shrinks_from_clustering() {
        // With n ≪ N the k clustered targets usually share one owner, so
        // the average neighbor count sits well below 2 + k.
        let g = random_group(200, 19, 8);
        let koorde = Koorde::new(g.clone(), 16);
        let avg: f64 = (0..g.len())
            .map(|m| koorde.neighbor_count(m) as f64)
            .sum::<f64>()
            / g.len() as f64;
        assert!(avg < 6.0, "clustering should collapse owners, avg {avg}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Koorde::new(random_group(4, 8, 9), 3);
    }
}
